"""Shared MIPS-backend evaluation over a suite's test queries.

One vectorized ``search_batch`` per (task, backend) pair: the CLI's
``repro mips`` subcommand, ``examples/mips_baselines.py`` and the CI
backend-matrix smoke job all report from this single loop instead of
re-implementing the aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.suite import BabiSuite
from repro.mips import available_backends


@dataclass(frozen=True)
class BackendEvalRow:
    """Aggregate statistics of one backend over the whole suite."""

    backend: str
    agreement_with_exact: float
    label_accuracy: float
    mean_comparisons: float
    early_exit_rate: float


def evaluate_mips_backends(
    suite: BabiSuite,
    names: list[str] | None = None,
    rho: float = 1.0,
    seed: int = 0,
) -> list[BackendEvalRow]:
    """Run every named backend over identical trained-model queries.

    Queries are each task's final controller outputs h_T on the test
    set; agreement is measured against the exact backend's labels on
    the very same queries.
    """
    names = list(names) if names is not None else list(available_backends())
    per_task = []
    for system in suite.tasks.values():
        batch = system.test_batch
        trace = system.batch_engine.forward_trace(
            batch.stories, batch.questions, batch.story_lengths
        )
        exact = system.mips_engine("exact").search_batch(trace.h_final)
        per_task.append((system, trace.h_final, batch.answers, exact))

    rows: list[BackendEvalRow] = []
    for name in names:
        agree = correct = total = comparisons = exits = 0
        for system, queries, answers, exact in per_task:
            results = (
                exact  # reference pass already computed during prep
                if name == "exact"
                else system.mips_engine(name, rho=rho, seed=seed).search_batch(
                    queries
                )
            )
            agree += int((results.labels == exact.labels).sum())
            correct += int((results.labels == np.asarray(answers)).sum())
            comparisons += int(results.comparisons.sum())
            exits += int(results.early_exits.sum())
            total += len(results)
        rows.append(
            BackendEvalRow(
                backend=name,
                agreement_with_exact=agree / total,
                label_accuracy=correct / total,
                mean_comparisons=comparisons / total,
                early_exit_rate=exits / total,
            )
        )
    return rows
