"""Nominal workload operation traces per task.

Builds the per-device operation counts of running a task's test set:
the CPU/GPU always execute the full output matvec (their output layer is
one parallel primitive), while the FPGA's scan length depends on
inference thresholding — those counts come from the accelerator run
itself. FLOPS/kJ normalisation uses the *nominal* (full-scan) FLOPs for
every configuration so the metric measures useful QA work per joule.
"""

from __future__ import annotations

from repro.babi.dataset import EncodedBatch
from repro.hw.opcounts import ExampleOpCounts, OpCounter


def batch_word_counts(batch: EncodedBatch) -> list[tuple[list[int], int]]:
    """(sentence word counts, question word count) per example."""
    result = []
    for i in range(len(batch)):
        n_sentences = int(batch.story_lengths[i])
        words = [
            int((batch.stories[i, s] != 0).sum()) for s in range(n_sentences)
        ]
        q_words = int((batch.questions[i] != 0).sum())
        result.append((words, q_words))
    return result


def nominal_ops(
    batch: EncodedBatch,
    embed_dim: int,
    hops: int,
    vocab_size: int,
) -> ExampleOpCounts:
    """Full-precision, full-output-scan op counts for a test batch."""
    counter = OpCounter(embed_dim)
    total = ExampleOpCounts()
    for words, q_words in batch_word_counts(batch):
        total = total + counter.example(words, q_words, hops, vocab_size)
    return total
