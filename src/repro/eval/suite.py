"""The bAbI evaluation suite: data + trained models for all 20 tasks.

The paper evaluates 20 bAbI tasks with per-task pre-trained models over
the dataset's full vocabulary, so the output dimension |I| is the
(large) union vocabulary — which is what makes the sequential output
scan expensive and inference thresholding worthwhile. This module
builds exactly that: one shared vocabulary across all tasks, one trained
MANN per task, plus the fitted thresholding state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.babi.dataset import BabiDataset, EncodedBatch
from repro.babi.story import QAExample
from repro.babi.tasks import all_task_ids, get_generator
from repro.babi.vocab import Vocab
from repro.mann.batch import BatchInferenceEngine
from repro.mann.config import MannConfig
from repro.mann.inference import InferenceEngine
from repro.mann.trainer import Trainer, TrainResult
from repro.mann.model import MemoryNetwork
from repro.mann.weights import MannWeights
from repro.mips.backend import MipsBackend, get_backend
from repro.mips.thresholding import ThresholdModel, fit_threshold_model
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class SuiteConfig:
    """Size and training parameters of the evaluation suite."""

    task_ids: tuple[int, ...] = tuple(range(1, 21))
    n_train: int = 200
    n_test: int = 100
    embed_dim: int = 20
    hops: int = 3
    epochs: int = 40
    lr: float = 0.01
    batch_size: int = 32
    seed: int = 7

    def __post_init__(self):
        if not self.task_ids:
            raise ValueError("need at least one task")
        if self.n_train < 1 or self.n_test < 1:
            raise ValueError("n_train and n_test must be positive")


@dataclass
class TaskSystem:
    """Everything needed to run one task on any device.

    ``train``/``test`` hold the raw :class:`BabiDataset` when the system
    was trained in-process; systems restored from saved artifacts
    (:mod:`repro.artifacts`) carry ``None`` there and keep only the
    encoded batches, which is all the experiment drivers consume.
    ``quantized`` is an optional fixed-point snapshot of the weights
    (:class:`~repro.mann.quantize.QuantizedWeights`), populated when the
    artifacts were saved with a ``qformat`` — it is what
    ``open_predictor(..., quantized=True)`` serves.
    """

    task_id: int
    train: BabiDataset | None
    test: BabiDataset | None
    train_batch: EncodedBatch
    test_batch: EncodedBatch
    weights: MannWeights
    engine: InferenceEngine
    batch_engine: BatchInferenceEngine
    threshold_model: ThresholdModel
    train_result: TrainResult
    train_logits: np.ndarray
    quantized: "QuantizedWeights | None" = None

    @property
    def vocab_size(self) -> int:
        return self.weights.config.vocab_size

    @property
    def test_accuracy(self) -> float:
        return self.train_result.test_accuracy

    def mips_engine(self, name: str = "exact", **params) -> MipsBackend:
        """Build a registered MIPS backend over this task's output rows.

        The task's fitted :class:`ThresholdModel` is always supplied, so
        ``system.mips_engine("threshold", rho=0.95)`` works out of the
        box and other backends simply ignore it.
        """
        return get_backend(name).build(
            self.weights.w_o, threshold_model=self.threshold_model, **params
        )

    def batch_engine_with(self, mips_backend: str, **params) -> BatchInferenceEngine:
        """A batch inference engine whose output projection runs the
        named MIPS backend (same weights, same threshold model)."""
        return BatchInferenceEngine(
            self.weights,
            mips_backend,
            threshold_model=self.threshold_model,
            **params,
        )


@dataclass
class BabiSuite:
    """All task systems plus the shared vocabulary."""

    config: SuiteConfig
    vocab: Vocab
    tasks: dict[int, TaskSystem] = field(default_factory=dict)

    @property
    def task_ids(self) -> list[int]:
        return sorted(self.tasks)

    def mean_test_accuracy(self) -> float:
        return float(
            np.mean([t.test_accuracy for t in self.tasks.values()])
        )

    # -- persistence -----------------------------------------------------
    def save(self, directory) -> None:
        """Persist this suite as a deployable artifact directory.

        Delegates to :func:`repro.artifacts.save_suite`; ``load`` (or
        ``repro.serving.open_predictor``) restores it without retraining.
        """
        from repro.artifacts import save_suite

        save_suite(self, directory)

    @classmethod
    def load(cls, directory) -> "BabiSuite":
        """Restore a suite saved with :meth:`save` (no retraining)."""
        from repro.artifacts import load_suite

        return load_suite(directory)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, config: SuiteConfig = SuiteConfig()) -> "BabiSuite":
        """Generate data, train per-task models, fit thresholding."""
        unknown = set(config.task_ids) - set(all_task_ids())
        if unknown:
            raise ValueError(f"unknown task ids: {sorted(unknown)}")

        rngs = spawn_rngs(config.seed, 2 * len(config.task_ids))
        per_task_examples: dict[int, tuple[list[QAExample], list[QAExample]]] = {}
        every_example: list[QAExample] = []
        for pos, task_id in enumerate(config.task_ids):
            generator = get_generator(task_id)
            train_examples = generator(rngs[2 * pos], config.n_train)
            test_examples = generator(rngs[2 * pos + 1], config.n_test)
            per_task_examples[task_id] = (train_examples, test_examples)
            every_example.extend(train_examples)
            every_example.extend(test_examples)

        vocab = Vocab.from_examples(every_example)
        suite = cls(config=config, vocab=vocab)
        for task_id in config.task_ids:
            suite.tasks[task_id] = _build_task_system(
                task_id, per_task_examples[task_id], vocab, config
            )
        return suite


def _build_task_system(
    task_id: int,
    examples: tuple[list[QAExample], list[QAExample]],
    vocab: Vocab,
    config: SuiteConfig,
) -> TaskSystem:
    train_examples, test_examples = examples
    probe = BabiDataset(train_examples + test_examples, vocab)
    train = BabiDataset(train_examples, vocab, probe.memory_size, probe.sentence_len)
    test = BabiDataset(test_examples, vocab, probe.memory_size, probe.sentence_len)

    model_config = MannConfig(
        vocab_size=len(vocab),
        embed_dim=config.embed_dim,
        memory_size=probe.memory_size,
        hops=config.hops,
        seed=config.seed + task_id,
    )
    model = MemoryNetwork(model_config)
    trainer = Trainer(
        model,
        lr=config.lr,
        batch_size=config.batch_size,
        seed=config.seed + task_id,
    )
    train_batch = train.encode()
    test_batch = test.encode()
    result = trainer.fit(
        train_batch, epochs=config.epochs, test=test_batch, target_accuracy=0.995
    )
    result.majority_accuracy = train.majority_baseline_accuracy()

    weights = model.export_weights()
    engine = InferenceEngine(weights)
    batch_engine = engine.batch
    train_logits = batch_engine.logits(
        train_batch.stories, train_batch.questions, train_batch.story_lengths
    )
    threshold_model = fit_threshold_model(train_logits, train_batch.answers)
    return TaskSystem(
        task_id=task_id,
        train=train,
        test=test,
        train_batch=train_batch,
        test_batch=test_batch,
        weights=weights,
        engine=engine,
        batch_engine=batch_engine,
        threshold_model=threshold_model,
        train_result=result,
        train_logits=train_logits,
    )
