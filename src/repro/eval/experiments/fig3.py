"""Fig. 3: accuracy and comparison counts vs the thresholding constant.

Sweeps rho over {no-ITH, 1.0, 0.99, 0.95, 0.9} with and without the
silhouette index ordering, aggregated over every task of the suite.
Both axes are normalised as in the paper: accuracy relative to the
no-thresholding accuracy, comparisons relative to the full |I| scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.suite import BabiSuite, TaskSystem
from repro.utils.tables import TextTable, format_float

PAPER_RHOS = (1.0, 0.99, 0.95, 0.9)


@dataclass
class Fig3Point:
    """One sweep point (a bar pair in the paper's figure)."""

    rho: float | None  # None = no inference thresholding
    index_ordering: bool
    accuracy: float
    mean_comparisons: float
    normalised_accuracy: float = 0.0
    normalised_comparisons: float = 0.0


@dataclass
class Fig3Result:
    points: list[Fig3Point]

    def series(self, index_ordering: bool) -> list[Fig3Point]:
        return [
            p
            for p in self.points
            if p.index_ordering == index_ordering or p.rho is None
        ]

    def point(self, rho: float | None, index_ordering: bool = True) -> Fig3Point:
        for p in self.points:
            if p.rho == rho and (p.rho is None or p.index_ordering == index_ordering):
                return p
        raise KeyError((rho, index_ordering))

    def to_table(self) -> TextTable:
        table = TextTable(
            ["rho", "ordering", "accuracy", "acc (norm)", "comparisons (norm)"],
            title="Fig. 3 — inference thresholding sweep on the bAbI suite",
        )
        for p in self.points:
            table.add_row(
                [
                    "w/o ITH" if p.rho is None else f"{p.rho:.2f}",
                    "-" if p.rho is None else ("yes" if p.index_ordering else "no"),
                    format_float(p.accuracy, 4),
                    format_float(p.normalised_accuracy, 4),
                    format_float(p.normalised_comparisons, 4),
                ]
            )
        return table


def _queries_and_answers(system: TaskSystem) -> tuple[np.ndarray, np.ndarray]:
    """Final controller outputs h_T and true labels of a task's test set."""
    batch = system.test_batch
    trace = system.batch_engine.forward_trace(
        batch.stories, batch.questions, batch.story_lengths
    )
    return trace.h_final, batch.answers


def run_fig3(
    suite: BabiSuite,
    rhos: tuple[float, ...] = PAPER_RHOS,
) -> Fig3Result:
    """Sweep rho x ordering over the full suite."""
    per_task = {
        task_id: _queries_and_answers(system)
        for task_id, system in suite.tasks.items()
    }

    def evaluate(engine_factory) -> tuple[float, float]:
        """One vectorized search_batch per task instead of a query loop."""
        correct = total = comparisons = 0
        for task_id, (queries, answers) in per_task.items():
            engine = engine_factory(suite.tasks[task_id])
            results = engine.search_batch(queries)
            correct += int((results.labels == answers).sum())
            comparisons += int(results.comparisons.sum())
            total += len(results)
        return correct / total, comparisons / total

    points: list[Fig3Point] = []
    base_accuracy, base_comparisons = evaluate(
        lambda system: system.mips_engine("exact")
    )
    points.append(
        Fig3Point(None, True, base_accuracy, base_comparisons, 1.0, 1.0)
    )

    for rho in rhos:
        for ordering in (True, False):
            accuracy, mean_cmp = evaluate(
                lambda system, rho=rho, ordering=ordering: system.mips_engine(
                    "threshold", rho=rho, index_ordering=ordering
                )
            )
            points.append(
                Fig3Point(
                    rho,
                    ordering,
                    accuracy,
                    mean_cmp,
                    accuracy / base_accuracy,
                    mean_cmp / base_comparisons,
                )
            )
    return Fig3Result(points)
