"""One module per reproduced table/figure plus the text-claim ablations."""

from repro.eval.experiments.fig3 import Fig3Result, run_fig3
from repro.eval.experiments.fig4 import Fig4Result, run_fig4
from repro.eval.experiments.interface_ablation import (
    InterfaceAblationResult,
    run_interface_ablation,
)
from repro.eval.experiments.logit_distributions import (
    LogitDistributionSummary,
    summarise_logit_distributions,
)
from repro.eval.experiments.table1 import (
    FpgaArtifacts,
    Table1Result,
    collect_fpga_artifacts,
    run_table1,
)

__all__ = [
    "run_table1",
    "Table1Result",
    "FpgaArtifacts",
    "collect_fpga_artifacts",
    "run_fig3",
    "Fig3Result",
    "run_fig4",
    "Fig4Result",
    "run_interface_ablation",
    "InterfaceAblationResult",
    "summarise_logit_distributions",
    "LogitDistributionSummary",
]
