"""Fig. 2b: logit mixture distributions of a trained model.

Summarises, for the most frequent answer indices of one task, the two
conditional distributions Algorithm 1 estimates — z_i when index i is
the correct argmax vs when it is not — plus their separation and the
silhouette coefficient that drives the visiting order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.suite import TaskSystem
from repro.utils.tables import TextTable, format_float


@dataclass
class IndexDistribution:
    index: int
    word: str
    n_positive: int
    n_negative: int
    positive_mean: float
    negative_mean: float
    separation: float  # (mu+ - mu-) / pooled std
    silhouette: float
    threshold_rho1: float


@dataclass
class LogitDistributionSummary:
    task_id: int
    rows: list[IndexDistribution]

    def to_table(self) -> TextTable:
        table = TextTable(
            [
                "index",
                "word",
                "n+",
                "n-",
                "mean z|y=i",
                "mean z|y!=i",
                "separation",
                "silhouette",
                "theta(rho=1)",
            ],
            title=f"Fig. 2b — logit mixtures, task {self.task_id}",
        )
        for r in self.rows:
            table.add_row(
                [
                    str(r.index),
                    r.word,
                    str(r.n_positive),
                    str(r.n_negative),
                    format_float(r.positive_mean, 3),
                    format_float(r.negative_mean, 3),
                    format_float(r.separation, 2),
                    format_float(r.silhouette, 3),
                    format_float(r.threshold_rho1, 3),
                ]
            )
        return table


def summarise_logit_distributions(
    system: TaskSystem,
    vocab_words: list[str],
    top_k: int = 8,
) -> LogitDistributionSummary:
    logits = system.train_logits
    labels = system.train_batch.answers
    predictions = logits.argmax(axis=1)
    correct = predictions == labels
    theta = system.threshold_model.thresholds(1.0)

    counts = np.bincount(labels[correct], minlength=logits.shape[1])
    top_indices = np.argsort(-counts)[:top_k]
    rows = []
    for index in top_indices:
        if counts[index] == 0:
            continue
        pos = logits[correct & (labels == index), index]
        neg = logits[correct & (labels != index), index]
        pooled = np.sqrt((pos.var() + neg.var()) / 2) if neg.size else 0.0
        rows.append(
            IndexDistribution(
                index=int(index),
                word=vocab_words[index],
                n_positive=int(pos.size),
                n_negative=int(neg.size),
                positive_mean=float(pos.mean()),
                negative_mean=float(neg.mean()) if neg.size else float("nan"),
                separation=float((pos.mean() - neg.mean()) / pooled)
                if neg.size and pooled > 0
                else float("inf"),
                silhouette=float(system.threshold_model.silhouettes[index]),
                threshold_rho1=float(theta[index]),
            )
        )
    return LogitDistributionSummary(task_id=system.task_id, rows=rows)
