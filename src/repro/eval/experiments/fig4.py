"""Fig. 4: per-task energy efficiency normalised to the GPU.

Series: CPU, GPU (=1), FPGA 25 MHz, FPGA+ITH 25 MHz, FPGA 100 MHz and
FPGA+ITH 100 MHz, one value per bAbI task. Tasks differ in story
length, sentence length and answer distribution, which spreads the
per-task ratios — the structure behind the paper's 19x-534x spread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices import CpuModel, GpuModel
from repro.eval.experiments.table1 import FpgaArtifacts, collect_fpga_artifacts
from repro.eval.metrics import efficiency_ratio
from repro.eval.suite import BabiSuite
from repro.eval.workload import nominal_ops
from repro.hw.config import HwConfig
from repro.utils.tables import TextTable, format_ratio

FIG4_SERIES = (
    "CPU",
    "GPU",
    "FPGA 25 MHz",
    "FPGA+ITH 25 MHz",
    "FPGA 100 MHz",
    "FPGA+ITH 100 MHz",
)


@dataclass
class Fig4Result:
    """energy_efficiency[series][task_id] normalised to the GPU."""

    series: dict[str, dict[int, float]]
    task_ids: list[int]

    def best_config_per_task(self) -> dict[int, str]:
        best = {}
        for task_id in self.task_ids:
            best[task_id] = max(
                self.series, key=lambda name: self.series[name][task_id]
            )
        return best

    def to_table(self) -> TextTable:
        table = TextTable(
            ["task"] + list(self.series),
            title="Fig. 4 — per-task energy efficiency vs GPU",
        )
        for task_id in self.task_ids:
            table.add_row(
                [str(task_id)]
                + [format_ratio(self.series[name][task_id]) for name in self.series]
            )
        return table


def run_fig4(
    suite: BabiSuite,
    base_config: HwConfig | None = None,
    frequencies: tuple[float, float] = (25.0, 100.0),
    rho: float = 1.0,
) -> Fig4Result:
    base_config = base_config or HwConfig()
    calibration = base_config.calibration
    fpga_plain = collect_fpga_artifacts(suite, base_config, ith=False)
    fpga_ith = collect_fpga_artifacts(suite, base_config, ith=True, rho=rho)

    series: dict[str, dict[int, float]] = {name: {} for name in FIG4_SERIES}
    for task_id in suite.task_ids:
        system = suite.tasks[task_id]
        ops = nominal_ops(
            system.test_batch,
            system.weights.config.embed_dim,
            system.weights.config.hops,
            system.vocab_size,
        )
        n = len(system.test_batch)
        gpu = GpuModel(calibration).run(ops, n)
        cpu = CpuModel(calibration).run(ops, n)
        series["GPU"][task_id] = 1.0
        series["CPU"][task_id] = efficiency_ratio(
            cpu.seconds, cpu.energy_joules, gpu.seconds, gpu.energy_joules
        )

        for label, artifacts in (("FPGA", fpga_plain), ("FPGA+ITH", fpga_ith)):
            for frequency in frequencies:
                name = f"{label} {frequency:.0f} MHz"
                artifact = artifacts[task_id]
                seconds = artifact.wall_seconds(frequency)
                energy = artifact.energy_joules(frequency, base_config)
                series[name][task_id] = efficiency_ratio(
                    seconds, energy, gpu.seconds, gpu.energy_joules
                )

    return Fig4Result(series=series, task_ids=list(suite.task_ids))
