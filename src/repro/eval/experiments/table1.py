"""Table I: average time, power, speedup and FLOPS/kJ per configuration.

Configurations: CPU, GPU, FPGA at 25/50/75/100 MHz, and FPGA with
inference thresholding (rho = 1.0) at the same four frequencies.

The FPGA event simulation runs once per (task, ITH setting) — cycle
counts and op counts do not depend on the clock — and the wall time,
energy and power are then evaluated at each frequency, exactly like
re-clocking the same bitstream in the paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices import CpuModel, GpuModel
from repro.eval.metrics import EfficiencyRow, normalise_to_gpu
from repro.eval.suite import BabiSuite, TaskSystem
from repro.eval.workload import nominal_ops
from repro.hw.accelerator import MannAccelerator
from repro.hw.config import HwConfig
from repro.hw.energy import EnergyModel
from repro.hw.opcounts import ExampleOpCounts
from repro.utils.tables import TextTable, format_float, format_ratio

PAPER_FREQUENCIES_MHZ = (25.0, 50.0, 75.0, 100.0)


@dataclass
class FpgaArtifacts:
    """Frequency-independent outcome of one task's accelerator run."""

    task_id: int
    cycles: int
    interface_seconds: float
    interface_energy: float
    ops: ExampleOpCounts
    accuracy: float
    mean_comparisons: float
    early_exit_rate: float

    def wall_seconds(self, frequency_mhz: float) -> float:
        return self.interface_seconds + self.cycles / (frequency_mhz * 1e6)

    def energy_joules(self, frequency_mhz: float, config: HwConfig) -> float:
        model = EnergyModel(config.calibration)
        breakdown = model.run_energy(
            self.ops,
            self.interface_energy,
            self.wall_seconds(frequency_mhz),
            frequency_mhz,
        )
        return breakdown.total


def collect_fpga_artifacts(
    suite: BabiSuite,
    base_config: HwConfig,
    ith: bool,
    rho: float = 1.0,
    index_ordering: bool = True,
    mips_backend: str | None = None,
) -> dict[int, FpgaArtifacts]:
    """Run the event simulation for every task once.

    ``mips_backend`` overrides the OUTPUT module's search engine with
    any registered ``repro.mips`` backend; ``None`` keeps the paper's
    pairing (exact scan, or inference thresholding when ``ith``).
    """
    artifacts: dict[int, FpgaArtifacts] = {}
    for task_id in suite.task_ids:
        system = suite.tasks[task_id]
        config = (
            base_config.with_embed_dim(system.weights.config.embed_dim)
            .with_ith(ith, rho=rho, index_ordering=index_ordering)
            .with_mips_backend(mips_backend)
        )
        accelerator = MannAccelerator(
            system.weights, config, system.threshold_model
        )
        report = accelerator.run(system.test_batch)
        artifacts[task_id] = FpgaArtifacts(
            task_id=task_id,
            cycles=report.total_cycles,
            interface_seconds=report.interface_seconds,
            interface_energy=report.energy.interface,
            ops=report.ops,
            accuracy=report.accuracy,
            mean_comparisons=report.mean_comparisons,
            early_exit_rate=report.early_exit_rate,
        )
    return artifacts


@dataclass
class Table1Result:
    """All rows of Table I plus raw per-task artifacts."""

    rows: list[EfficiencyRow]
    fpga_plain: dict[int, FpgaArtifacts]
    fpga_ith: dict[int, FpgaArtifacts]
    accuracy_plain: float = 0.0
    accuracy_ith: float = 0.0
    frequencies: tuple[float, ...] = PAPER_FREQUENCIES_MHZ

    def row(self, name: str) -> EfficiencyRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def ith_time_reduction(self, frequency_mhz: float) -> float:
        """Fractional time saved by ITH at one frequency (paper: 6-18%)."""
        plain = self.row(f"FPGA {frequency_mhz:.0f} MHz")
        ith = self.row(f"FPGA+ITH {frequency_mhz:.0f} MHz")
        return 1.0 - ith.seconds / plain.seconds

    def to_table(self) -> TextTable:
        table = TextTable(
            ["Configuration", "Time (s)", "Power (W)", "Speedup", "FLOPS/kJ (norm)"],
            title="Table I — average measurement results on the bAbI suite",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.name,
                    format_float(row.seconds, 4),
                    format_float(row.power_w, 2),
                    format_ratio(row.speedup),
                    format_ratio(row.energy_efficiency_vs_gpu),
                ]
            )
        return table


def run_table1(
    suite: BabiSuite,
    base_config: HwConfig | None = None,
    frequencies: tuple[float, ...] = PAPER_FREQUENCIES_MHZ,
    rho: float = 1.0,
) -> Table1Result:
    """Reproduce Table I on the suite's test sets."""
    base_config = base_config or HwConfig()
    calibration = base_config.calibration

    # Shared nominal workload (full output scan) for the CPU/GPU rows
    # and the FLOPS/kJ numerators of every row.
    total_nominal = ExampleOpCounts()
    n_examples = 0
    for system in suite.tasks.values():
        total_nominal = total_nominal + nominal_ops(
            system.test_batch,
            system.weights.config.embed_dim,
            system.weights.config.hops,
            system.vocab_size,
        )
        n_examples += len(system.test_batch)

    gpu_report = GpuModel(calibration).run(total_nominal, n_examples)
    cpu_report = CpuModel(calibration).run(total_nominal, n_examples)
    rows = [
        EfficiencyRow(
            "CPU", cpu_report.seconds, cpu_report.power_w, total_nominal.flops
        ),
        EfficiencyRow(
            "GPU", gpu_report.seconds, gpu_report.power_w, total_nominal.flops
        ),
    ]

    fpga_plain = collect_fpga_artifacts(suite, base_config, ith=False)
    fpga_ith = collect_fpga_artifacts(suite, base_config, ith=True, rho=rho)

    for label, artifacts in (("FPGA", fpga_plain), ("FPGA+ITH", fpga_ith)):
        for frequency in frequencies:
            seconds = sum(a.wall_seconds(frequency) for a in artifacts.values())
            energy = sum(
                a.energy_joules(frequency, base_config) for a in artifacts.values()
            )
            rows.append(
                EfficiencyRow(
                    f"{label} {frequency:.0f} MHz",
                    seconds,
                    energy / seconds,
                    total_nominal.flops,
                )
            )

    normalise_to_gpu(rows)
    n_tasks = max(1, len(suite.task_ids))
    return Table1Result(
        rows=rows,
        fpga_plain=fpga_plain,
        fpga_ith=fpga_ith,
        accuracy_plain=sum(a.accuracy for a in fpga_plain.values()) / n_tasks,
        accuracy_ith=sum(a.accuracy for a in fpga_ith.values()) / n_tasks,
        frequencies=tuple(frequencies),
    )
