"""Section V text claim: energy efficiency without the interface bound.

"As the frequency increases, inference time is dominated by the
interface between the host and the FPGA. If this were not the case, we
estimate that our approach would use 162 times less energy than the
GPU." This ablation recomputes the FPGA+ITH energy at 100 MHz with the
host-interface time and energy removed, normalised to the same GPU
energy as Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices import GpuModel
from repro.eval.experiments.table1 import collect_fpga_artifacts
from repro.eval.suite import BabiSuite
from repro.eval.workload import nominal_ops
from repro.hw.config import HwConfig
from repro.hw.energy import EnergyModel
from repro.hw.opcounts import ExampleOpCounts
from repro.utils.tables import TextTable, format_ratio


@dataclass
class InterfaceAblationResult:
    frequency_mhz: float
    with_interface: float  # energy efficiency vs GPU, Table I style
    without_interface: float  # the "162x" style estimate

    def to_table(self) -> TextTable:
        table = TextTable(
            ["metric", "value"],
            title="Interface-bound ablation (FPGA+ITH vs GPU energy efficiency)",
        )
        table.add_row(
            [f"with host interface @ {self.frequency_mhz:.0f} MHz",
             format_ratio(self.with_interface)]
        )
        table.add_row(
            [f"interface removed @ {self.frequency_mhz:.0f} MHz",
             format_ratio(self.without_interface)]
        )
        return table


def run_interface_ablation(
    suite: BabiSuite,
    base_config: HwConfig | None = None,
    frequency_mhz: float = 100.0,
    rho: float = 1.0,
) -> InterfaceAblationResult:
    base_config = base_config or HwConfig()
    calibration = base_config.calibration
    energy_model = EnergyModel(calibration)

    total_nominal = ExampleOpCounts()
    n_examples = 0
    for system in suite.tasks.values():
        total_nominal = total_nominal + nominal_ops(
            system.test_batch,
            system.weights.config.embed_dim,
            system.weights.config.hops,
            system.vocab_size,
        )
        n_examples += len(system.test_batch)
    gpu_energy = GpuModel(calibration).run(total_nominal, n_examples).energy_joules

    artifacts = collect_fpga_artifacts(suite, base_config, ith=True, rho=rho)
    energy_with = sum(
        a.energy_joules(frequency_mhz, base_config) for a in artifacts.values()
    )
    energy_without = 0.0
    for a in artifacts.values():
        compute_seconds = a.cycles / (frequency_mhz * 1e6)
        breakdown = energy_model.run_energy(
            a.ops, 0.0, compute_seconds, frequency_mhz
        )
        energy_without += breakdown.total

    return InterfaceAblationResult(
        frequency_mhz=frequency_mhz,
        with_interface=gpu_energy / energy_with,
        without_interface=gpu_energy / energy_without,
    )
