"""Metrics shared by the experiment drivers.

All Table I / Fig. 4 numbers are normalised to the GPU, following the
paper: speedup = t_GPU / t_device, and energy efficiency "FLOPS/kJ" is
the *FLOP rate per kilojoule* — (FLOPs / t) / (E / 1000). The paper's
own Table I confirms this reading: every normalised FLOPS/kJ entry
equals speedup x (E_GPU / E_device), e.g. the FPGA at 25 MHz gives
5.21 x 16.1 = 83.9 (reported 83.74) and at 100 MHz 7.49 x 16.9 = 126.6
(reported 126.72).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EfficiencyRow:
    """One configuration's absolute and GPU-normalised results."""

    name: str
    seconds: float
    power_w: float
    flops: float
    speedup: float = 0.0
    flops_rate_per_kj: float = 0.0
    energy_efficiency_vs_gpu: float = 0.0

    @property
    def energy_joules(self) -> float:
        return self.seconds * self.power_w

    @property
    def flops_rate(self) -> float:
        """Achieved FLOP/s on the nominal workload."""
        return self.flops / self.seconds


def efficiency_ratio(
    device_seconds: float,
    device_energy: float,
    gpu_seconds: float,
    gpu_energy: float,
) -> float:
    """FLOPS/kJ ratio vs GPU for an identical nominal workload.

    Equals speedup x energy ratio; the FLOP count cancels.
    """
    if min(device_seconds, device_energy, gpu_seconds, gpu_energy) <= 0:
        raise ValueError("times and energies must be positive")
    return (gpu_seconds / device_seconds) * (gpu_energy / device_energy)


def normalise_to_gpu(rows: list[EfficiencyRow], gpu_name: str = "GPU") -> list[EfficiencyRow]:
    """Fill the normalised columns of every row in place."""
    gpu = next((r for r in rows if r.name == gpu_name), None)
    if gpu is None:
        raise ValueError(f"no row named {gpu_name!r} to normalise against")
    if gpu.seconds <= 0 or gpu.energy_joules <= 0:
        raise ValueError("GPU row must have positive time and energy")
    gpu_rate_per_kj = gpu.flops_rate / (gpu.energy_joules / 1e3)
    for row in rows:
        row.speedup = gpu.seconds / row.seconds
        row.flops_rate_per_kj = row.flops_rate / (row.energy_joules / 1e3)
        row.energy_efficiency_vs_gpu = row.flops_rate_per_kj / gpu_rate_per_kj
    return rows
