"""Experiment drivers reproducing every table and figure of the paper.

* :mod:`repro.eval.suite` — builds the 20-task bAbI suite with a shared
  vocabulary, trains one MANN per task and fits inference-thresholding
  state (the "pre-trained models" the paper's host streams to devices).
* :mod:`repro.eval.experiments.table1` — Table I (time/power/speedup/
  FLOPS-per-kJ for CPU, GPU and FPGA at four frequencies, with and
  without inference thresholding).
* :mod:`repro.eval.experiments.fig3` — Fig. 3 (accuracy and comparison
  counts vs the thresholding constant rho, with/without index ordering).
* :mod:`repro.eval.experiments.fig4` — Fig. 4 (per-task energy
  efficiency normalised to the GPU).
* :mod:`repro.eval.experiments.interface_ablation` — the Section V
  estimate of efficiency with the host interface removed (~162x).
* :mod:`repro.eval.experiments.logit_distributions` — Fig. 2b logit
  mixture summaries.
"""

from repro.eval.backends import BackendEvalRow, evaluate_mips_backends
from repro.eval.metrics import EfficiencyRow, normalise_to_gpu
from repro.eval.suite import BabiSuite, SuiteConfig, TaskSystem

__all__ = [
    "BabiSuite",
    "SuiteConfig",
    "TaskSystem",
    "BackendEvalRow",
    "evaluate_mips_backends",
    "EfficiencyRow",
    "normalise_to_gpu",
]
