"""i9-7900X-class CPU model.

The CPU dispatches the same primitive op graph with a much smaller
per-op cost than a GPU kernel launch but achieves far lower effective
throughput on the tiny matvecs (little SIMD utilisation, cold branch
behaviour in the recurrent loop). Net effect, as the paper measured:
the CPU is roughly at parity with the GPU in time (0.94x speedup) while
drawing about half the power.
"""

from __future__ import annotations

from repro.devices.base import DeviceModel, DeviceReport
from repro.hw.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.hw.opcounts import ExampleOpCounts


class CpuModel(DeviceModel):
    """Per-op dispatch + roofline timing at package power."""

    name = "CPU"

    def __init__(self, calibration: CalibrationConstants = DEFAULT_CALIBRATION):
        self.calibration = calibration

    def run(self, ops: ExampleOpCounts, n_examples: int) -> DeviceReport:
        c = self.calibration
        if n_examples < 1:
            raise ValueError("n_examples must be >= 1")
        dispatch_time = ops.kernel_launches * c.cpu_op_dispatch_overhead
        compute_time = ops.flops / c.cpu_flops_effective
        memory_time = (
            (ops.sram_reads + ops.sram_writes)
            * c.bytes_per_word
            / c.cpu_memory_bandwidth
        )
        seconds = dispatch_time + compute_time + memory_time
        return self._report(seconds, c.cpu_power, ops)

    def time_breakdown(self, ops: ExampleOpCounts, n_examples: int) -> dict[str, float]:
        c = self.calibration
        return {
            "dispatch": ops.kernel_launches * c.cpu_op_dispatch_overhead,
            "compute": ops.flops / c.cpu_flops_effective,
            "memory": (ops.sram_reads + ops.sram_writes)
            * c.bytes_per_word
            / c.cpu_memory_bandwidth,
        }
