"""TITAN V-class GPU model.

Inference of a MANN issues a long chain of tiny dependent kernels
(per-sentence embeddings, per-hop addressing/softmax/read/controller,
the output matvec). Each kernel pays a fixed launch/sync overhead that
far exceeds its arithmetic at bAbI sizes, so the model is launch-bound —
the mechanism behind the paper's observation that the GPU gains nothing
from its compute throughput on this workload, and that inference
thresholding "did not have a significant effect" there (the output
layer is one parallel kernel, not a sequential scan).
"""

from __future__ import annotations

from repro.devices.base import DeviceModel, DeviceReport
from repro.hw.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.hw.opcounts import ExampleOpCounts


class GpuModel(DeviceModel):
    """Launch-overhead + roofline timing, constant measured-class power."""

    name = "GPU"

    def __init__(self, calibration: CalibrationConstants = DEFAULT_CALIBRATION):
        self.calibration = calibration

    def run(self, ops: ExampleOpCounts, n_examples: int) -> DeviceReport:
        c = self.calibration
        if n_examples < 1:
            raise ValueError("n_examples must be >= 1")
        launch_time = ops.kernel_launches * c.gpu_kernel_launch_overhead
        compute_time = ops.flops / c.gpu_flops_effective
        # Weights stay resident; per-example input/output crosses PCIe.
        bytes_moved = (
            (ops.stream_words_in + ops.stream_words_out) * c.bytes_per_word
        )
        transfer_time = (
            bytes_moved / c.gpu_transfer_bandwidth
            + 2 * n_examples * c.gpu_transfer_latency
        )
        seconds = launch_time + compute_time + transfer_time
        return self._report(seconds, c.gpu_power, ops)

    def time_breakdown(self, ops: ExampleOpCounts, n_examples: int) -> dict[str, float]:
        """Seconds by source, for the analysis examples."""
        c = self.calibration
        bytes_moved = (
            (ops.stream_words_in + ops.stream_words_out) * c.bytes_per_word
        )
        return {
            "kernel_launch": ops.kernel_launches * c.gpu_kernel_launch_overhead,
            "compute": ops.flops / c.gpu_flops_effective,
            "transfer": bytes_moved / c.gpu_transfer_bandwidth
            + 2 * n_examples * c.gpu_transfer_latency,
        }
