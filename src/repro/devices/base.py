"""Shared interface of the baseline device models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.opcounts import ExampleOpCounts


@dataclass
class DeviceReport:
    """Time/power/energy of one workload run on a device."""

    device: str
    seconds: float
    power_w: float
    ops: ExampleOpCounts

    @property
    def energy_joules(self) -> float:
        return self.seconds * self.power_w

    @property
    def flops(self) -> int:
        return self.ops.flops

    def flops_per_kilojoule(self) -> float:
        return self.flops / (self.energy_joules / 1e3)


class DeviceModel:
    """Base class: maps an operation trace to a :class:`DeviceReport`."""

    name = "device"

    def run(self, ops: ExampleOpCounts, n_examples: int) -> DeviceReport:
        """Run a workload of ``ops`` split over ``n_examples`` inferences."""
        raise NotImplementedError

    def _report(self, seconds: float, power: float, ops: ExampleOpCounts) -> DeviceReport:
        if seconds <= 0:
            raise ValueError("model produced non-positive time")
        return DeviceReport(self.name, seconds, power, ops)
