"""Analytic CPU/GPU baseline device models.

The paper compares the FPGA against an Intel i9-7900X CPU and an NVIDIA
TITAN V GPU running the same pre-trained MANN. Offline we model both
devices analytically, driven by the identical per-example operation
trace used by the FPGA energy model: the GPU pays a fixed kernel-launch
overhead per primitive op (which dominates for the MANN's tiny recurrent
matvecs and is why MANNs are "difficult to parallelize on CPUs or
GPUs"), the CPU pays a smaller per-op dispatch cost but has lower
arithmetic throughput, and both draw their class-typical package power.
"""

from repro.devices.base import DeviceModel, DeviceReport
from repro.devices.cpu import CpuModel
from repro.devices.gpu import GpuModel

__all__ = ["DeviceModel", "DeviceReport", "CpuModel", "GpuModel"]
