"""OUTPUT module: sequential maximum-inner-product search (Eq. 6).

One output row streams per cycle through the |E|-wide MAC lanes and the
adder tree; a comparator tracks the running maximum (conventional mode,
Fig. 2a) or checks each logit against its per-index threshold and exits
early (inference thresholding, Fig. 2b). This scan is O(|I|) and is what
dominates inference time for large output vocabularies (Section IV).
"""

from __future__ import annotations

from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment
from repro.hw.latency import LatencyParams
from repro.hw.modules.messages import AnswerMsg, SearchRequestMsg
from repro.mips.backend import MipsBackend
from repro.mips.stats import SearchResult


class OutputModule:
    """Runs the MIPS engine over W_o rows and returns the label.

    ``engine`` is any registered :class:`~repro.mips.backend.MipsBackend`
    (exact scan, inference thresholding, or an approximate baseline);
    the cycle model charges ``result.comparisons`` scan slots either way.
    """

    def __init__(
        self,
        env: Environment,
        latency: LatencyParams,
        engine: MipsBackend,
        from_read: Fifo,
        to_control: Fifo,
    ):
        self.env = env
        self.latency = latency
        self.engine = engine
        self.from_read = from_read
        self.to_control = to_control
        self.busy_cycles = 0
        self.searches = 0
        self.total_comparisons = 0
        self.last_result: SearchResult | None = None
        self.process = env.process(self._run(), name="OUTPUT")

    def _run(self):
        while True:
            msg = yield self.from_read.get()
            if msg is None:
                return
            if not isinstance(msg, SearchRequestMsg):
                raise TypeError(
                    f"expected SearchRequestMsg, got {type(msg).__name__}"
                )
            start = self.env.now
            result = self.engine.search(msg.h)
            self.last_result = result
            yield self.env.timeout(
                self.latency.output_scan_cycles(result.comparisons)
            )
            yield self.to_control.put(
                AnswerMsg(
                    label=result.label,
                    logit=result.logit,
                    comparisons=result.comparisons,
                    early_exit=result.early_exit,
                )
            )
            self.searches += 1
            self.total_comparisons += result.comparisons
            self.busy_cycles += self.env.now - start
