"""CONTROL module: decodes the host stream and sequences the pipeline.

Control signals are embedded in the data stream (Section III): a start
word announces how many sentences follow and how many hops to run; the
CONTROL module routes sentences to INPUT & WRITE, the question to READ
once the write stream finishes, and forwards the OUTPUT module's answer
to FIFO_OUT.
"""

from __future__ import annotations

from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment
from repro.hw.latency import LatencyParams
from repro.hw.modules.messages import (
    AnswerMsg,
    QuestionMsg,
    SentenceMsg,
    StartExampleMsg,
)


class ControlModule:
    """Routes the host stream and gates the read phase."""

    def __init__(
        self,
        env: Environment,
        latency: LatencyParams,
        fifo_in: Fifo,
        fifo_out: Fifo,
        to_write: Fifo,
        to_read: Fifo,
        from_output: Fifo,
        write_ack: Fifo | None = None,
    ):
        self.env = env
        self.latency = latency
        self.fifo_in = fifo_in
        self.fifo_out = fifo_out
        self.to_write = to_write
        self.to_read = to_read
        self.from_output = from_output
        self.write_ack = write_ack
        self.busy_cycles = 0
        self.examples_done = 0
        self.process = env.process(self._run(), name="CONTROL")

    def _run(self):
        while True:
            msg = yield self.fifo_in.get()
            if msg is None:  # shutdown sentinel
                yield self.to_write.put(None)
                return
            if not isinstance(msg, StartExampleMsg):
                raise TypeError(f"expected StartExampleMsg, got {type(msg).__name__}")
            start = self.env.now
            # Decode the control word (one register stage).
            yield self.env.timeout(self.latency.reg_latency)

            # Stream the write path: sentences to INPUT & WRITE.
            for _ in range(msg.n_sentences):
                item = yield self.fifo_in.get()
                if not isinstance(item, SentenceMsg):
                    raise TypeError(
                        f"expected SentenceMsg, got {type(item).__name__}"
                    )
                yield self.to_write.put(item)

            # The question terminates the stream; the read phase is
            # gated until every memory row is committed ("when this
            # stream is finished, the READ module generates a read key").
            question = yield self.fifo_in.get()
            if not isinstance(question, QuestionMsg):
                raise TypeError(
                    f"expected QuestionMsg, got {type(question).__name__}"
                )
            if self.write_ack is not None:
                for _ in range(msg.n_sentences):
                    yield self.write_ack.get()
            yield self.to_read.put((msg, question))

            # Wait for the OUTPUT module's answer and forward it.
            answer = yield self.from_output.get()
            if not isinstance(answer, AnswerMsg):
                raise TypeError(f"expected AnswerMsg, got {type(answer).__name__}")
            yield self.fifo_out.put(answer)
            self.examples_done += 1
            self.busy_cycles += self.env.now - start
