"""Typed messages exchanged between modules over the FIFOs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StartExampleMsg:
    """Control word opening one QA example's stream."""

    n_sentences: int
    hops: int


@dataclass(frozen=True)
class SentenceMsg:
    """One story sentence: the word indices to embed and write."""

    slot: int
    word_indices: np.ndarray  # non-pad indices only


@dataclass(frozen=True)
class QuestionMsg:
    """The question's word indices (terminates the write stream)."""

    word_indices: np.ndarray


@dataclass(frozen=True)
class MemoryRowMsg:
    """An embedded sentence headed for the address/content memories."""

    slot: int
    row_a: np.ndarray  # (E,)
    row_c: np.ndarray  # (E,)


@dataclass(frozen=True)
class KeyMsg:
    """A read key k_t sent from READ to MEM (Eq. 3)."""

    hop: int
    key: np.ndarray  # (E,)


@dataclass(frozen=True)
class ReadVectorMsg:
    """The read vector r_t returned from MEM to READ (Eq. 5)."""

    hop: int
    read: np.ndarray  # (E,)
    scores: np.ndarray  # (L,) pre-softmax, for co-simulation checks
    attention: np.ndarray  # (L,)


@dataclass(frozen=True)
class SearchRequestMsg:
    """Final controller output h_T handed to the OUTPUT module."""

    h: np.ndarray  # (E,)


@dataclass(frozen=True)
class AnswerMsg:
    """Predicted label streamed back to the host."""

    label: int
    logit: float
    comparisons: int
    early_exit: bool
