"""MEM module: address memory (Eq. 1) and content memory (Eq. 5).

The address memory performs content-based addressing — an |E|-wide dot
product per slot streamed one slot per cycle through the multiplier
lanes and adder tree, followed by the pipelined exponential unit and a
divider stream for the softmax normalisation. The content memory then
accumulates the attention-weighted rows into the read vector. Softmax's
exp and division "cannot be parallelized on an FPGA" (Section III), so
both are modelled as element-wise sequential pipelines.
"""

from __future__ import annotations

import numpy as np

from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment
from repro.hw.latency import LatencyParams
from repro.hw.modules.messages import KeyMsg, MemoryRowMsg, ReadVectorMsg


class MemModule:
    """Stores embedded rows and serves attention reads."""

    def __init__(
        self,
        env: Environment,
        latency: LatencyParams,
        memory_size: int,
        from_write: Fifo,
        key_in: Fifo,
        read_out: Fifo,
        write_ack: Fifo | None = None,
    ):
        self.env = env
        self.latency = latency
        self.memory_size = memory_size
        self.from_write = from_write
        self.key_in = key_in
        self.read_out = read_out
        self.write_ack = write_ack
        embed_dim = latency.embed_dim
        self.mem_a = np.zeros((memory_size, embed_dim))
        self.mem_c = np.zeros((memory_size, embed_dim))
        self.rows_valid = 0
        self.busy_cycles = 0
        self.reads_served = 0
        self.write_process = env.process(self._write_loop(), name="MEM.write")
        self.read_process = env.process(self._read_loop(), name="MEM.read")

    # -- write port ------------------------------------------------------
    def _write_loop(self):
        while True:
            msg = yield self.from_write.get()
            if msg is None:  # shutdown sentinel
                return
            if not isinstance(msg, MemoryRowMsg):
                raise TypeError(f"expected MemoryRowMsg, got {type(msg).__name__}")
            if not 0 <= msg.slot < self.memory_size:
                raise IndexError(
                    f"slot {msg.slot} outside memory of {self.memory_size}"
                )
            yield self.env.timeout(self.latency.memory_write_latency)
            self.mem_a[msg.slot] = msg.row_a
            self.mem_c[msg.slot] = msg.row_c
            self.rows_valid = max(self.rows_valid, msg.slot + 1)
            if self.write_ack is not None:
                yield self.write_ack.put(msg.slot)

    def reset_example(self) -> None:
        """Invalidate rows between examples (new story overwrites)."""
        self.rows_valid = 0

    # -- read port ---------------------------------------------------------
    def _attention(self, key: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Numerically identical to InferenceEngine.attention."""
        mem = self.mem_a[: self.rows_valid]
        scores = mem @ key
        shifted = scores - scores.max()
        exps = np.exp(shifted)
        return scores, exps / exps.sum()

    def _read_loop(self):
        while True:
            msg = yield self.key_in.get()
            if msg is None:
                return
            if not isinstance(msg, KeyMsg):
                raise TypeError(f"expected KeyMsg, got {type(msg).__name__}")
            start = self.env.now
            n_slots = max(1, self.rows_valid)
            yield self.env.timeout(self.latency.addressing_cycles(n_slots))
            scores, attention = self._attention(msg.key)
            yield self.env.timeout(self.latency.content_read_cycles(n_slots))
            read = self.mem_c[: self.rows_valid].T @ attention
            yield self.read_out.put(
                ReadVectorMsg(msg.hop, read, scores, attention)
            )
            self.reads_served += 1
            self.busy_cycles += self.env.now - start
