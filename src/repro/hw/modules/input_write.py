"""INPUT & WRITE module: bag-of-words embedding and memory writes.

Implements Eq. 2: for each word index the module reads one |E|-wide
column of the embedding weights and accumulates it (emb_a and emb_c
lanes run in parallel hardware), adds the slot's temporal encoding and
ships the embedded row pair to the MEM module. Reading only the columns
named by the word indices is the paper's key efficiency argument for
this module.
"""

from __future__ import annotations

import numpy as np

from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment
from repro.hw.latency import LatencyParams
from repro.hw.modules.messages import MemoryRowMsg, SentenceMsg
from repro.mann.weights import MannWeights


class InputWriteModule:
    """Embeds sentences arriving from CONTROL into memory rows."""

    def __init__(
        self,
        env: Environment,
        latency: LatencyParams,
        weights: MannWeights,
        from_control: Fifo,
        to_mem: Fifo,
    ):
        self.env = env
        self.latency = latency
        self.weights = weights
        self.from_control = from_control
        self.to_mem = to_mem
        self.busy_cycles = 0
        self.sentences_embedded = 0
        self.process = env.process(self._run(), name="INPUT&WRITE")

    def _embed(self, word_indices: np.ndarray, slot: int) -> MemoryRowMsg:
        """Functional embedding, identical to the golden engine's maths."""
        w = self.weights
        idx = np.asarray(word_indices, dtype=np.int64)
        idx = idx[idx != 0]
        if idx.size == 0:
            row_a = np.zeros(w.w_emb_a.shape[1])
            row_c = np.zeros(w.w_emb_c.shape[1])
        else:
            row_a = w.w_emb_a[idx].sum(axis=0)
            row_c = w.w_emb_c[idx].sum(axis=0)
        return MemoryRowMsg(
            slot=slot,
            row_a=row_a + w.t_a[slot],
            row_c=row_c + w.t_c[slot],
        )

    def _run(self):
        while True:
            msg = yield self.from_control.get()
            if msg is None:  # shutdown sentinel
                yield self.to_mem.put(None)
                return
            if not isinstance(msg, SentenceMsg):
                raise TypeError(f"expected SentenceMsg, got {type(msg).__name__}")
            start = self.env.now
            n_words = max(1, int(np.count_nonzero(msg.word_indices)))
            # One embedding column per word through the accumulator,
            # then the accumulate register and temporal-encoding add.
            cycles = n_words * self.latency.mac_issue + 2 * self.latency.reg_latency
            yield self.env.timeout(cycles)
            yield self.to_mem.put(self._embed(msg.word_indices, msg.slot))
            self.sentences_embedded += 1
            self.busy_cycles += self.env.now - start
