"""The five hardware modules of the accelerator (Fig. 1).

Each module is an event-driven process on the :mod:`repro.hw.kernel`
environment, connected to its neighbours by bounded FIFOs. Cycle costs
come from :class:`repro.hw.latency.LatencyParams`; functional values are
computed with the same numpy expressions as the golden inference engine
so co-simulation is bit-exact.
"""

from repro.hw.modules.control import ControlModule
from repro.hw.modules.input_write import InputWriteModule
from repro.hw.modules.mem import MemModule
from repro.hw.modules.messages import (
    AnswerMsg,
    KeyMsg,
    MemoryRowMsg,
    QuestionMsg,
    ReadVectorMsg,
    SearchRequestMsg,
    SentenceMsg,
    StartExampleMsg,
)
from repro.hw.modules.output import OutputModule
from repro.hw.modules.read import ReadModule

__all__ = [
    "ControlModule",
    "InputWriteModule",
    "MemModule",
    "ReadModule",
    "OutputModule",
    "StartExampleMsg",
    "SentenceMsg",
    "QuestionMsg",
    "MemoryRowMsg",
    "KeyMsg",
    "ReadVectorMsg",
    "SearchRequestMsg",
    "AnswerMsg",
]
