"""READ module: the recurrent controller (Eqs. 3 and 4).

The READ module embeds the question into the first read key, then for
each hop sends the key to MEM, receives the read vector and computes
``h = r + W_r k`` with a sequential |E|x|E| matvec. The recurrent path
(blue line in Fig. 1) is the loop feeding ``h`` back as the next key.
After the final hop, ``h`` goes to the OUTPUT module.
"""

from __future__ import annotations

import numpy as np

from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment
from repro.hw.latency import LatencyParams
from repro.hw.modules.messages import (
    KeyMsg,
    QuestionMsg,
    ReadVectorMsg,
    SearchRequestMsg,
    StartExampleMsg,
)
from repro.mann.weights import MannWeights


class ReadModule:
    """Generates read keys and runs the recurrent hop loop."""

    def __init__(
        self,
        env: Environment,
        latency: LatencyParams,
        weights: MannWeights,
        from_control: Fifo,
        key_out: Fifo,
        read_in: Fifo,
        to_output: Fifo,
    ):
        self.env = env
        self.latency = latency
        self.weights = weights
        self.from_control = from_control
        self.key_out = key_out
        self.read_in = read_in
        self.to_output = to_output
        self.busy_cycles = 0
        self.hops_run = 0
        self.trace_keys: list[np.ndarray] = []
        self.trace_reads: list[ReadVectorMsg] = []
        self.process = env.process(self._run(), name="READ")

    def _embed_question(self, word_indices: np.ndarray) -> np.ndarray:
        w = self.weights
        idx = np.asarray(word_indices, dtype=np.int64)
        idx = idx[idx != 0]
        if idx.size == 0:
            return np.zeros(w.w_emb_q.shape[1])
        return w.w_emb_q[idx].sum(axis=0)

    def _run(self):
        while True:
            msg = yield self.from_control.get()
            if msg is None:
                yield self.key_out.put(None)
                return
            start_msg, question = msg
            if not isinstance(start_msg, StartExampleMsg):
                raise TypeError(
                    f"expected StartExampleMsg, got {type(start_msg).__name__}"
                )
            if not isinstance(question, QuestionMsg):
                raise TypeError(
                    f"expected QuestionMsg, got {type(question).__name__}"
                )
            start = self.env.now
            self.trace_keys = []
            self.trace_reads = []

            # Eq. 3 (t = 1): embed the question into the first key.
            n_words = max(1, int(np.count_nonzero(question.word_indices)))
            yield self.env.timeout(self.latency.embed_question_cycles(n_words))
            key = self._embed_question(question.word_indices)

            h = key
            for hop in range(start_msg.hops):
                self.trace_keys.append(key)
                yield self.key_out.put(KeyMsg(hop, key))
                reply = yield self.read_in.get()
                if not isinstance(reply, ReadVectorMsg):
                    raise TypeError(
                        f"expected ReadVectorMsg, got {type(reply).__name__}"
                    )
                self.trace_reads.append(reply)
                # Eq. 4: sequential E-wide dots of W_r against the key,
                # then the elementwise add of the read vector.
                yield self.env.timeout(self.latency.controller_cycles())
                h = reply.read + self.weights.w_r.T @ key
                key = h  # recurrent path (Eq. 3, t > 1)
                self.hops_run += 1

            yield self.to_output.put(SearchRequestMsg(h))
            self.busy_cycles += self.env.now - start
