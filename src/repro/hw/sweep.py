"""Design-space exploration of the accelerator configuration.

The paper fixes one design point (|E|-wide lanes, four clock choices).
This module sweeps the main architectural knobs — lane width, clock,
unit latencies, interface parameters — using the analytic timing model
plus the resource estimator, producing time/power/resource trade-off
curves a designer would use to pick the next implementation point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hw.calibration import CalibrationConstants
from repro.hw.config import HwConfig
from repro.hw.energy import EnergyModel
from repro.hw.latency import LatencyParams
from repro.hw.opcounts import ExampleOpCounts, OpCounter
from repro.hw.resources import ResourceEstimate, estimate_resources
from repro.hw.timing import CycleModel
from repro.mann.config import MannConfig
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class WorkloadShape:
    """Abstract per-example workload for analytic sweeps."""

    sentence_word_counts: tuple[int, ...] = (6, 6, 6, 6, 6, 6)
    question_words: int = 4
    hops: int = 3
    output_visited: int = 160
    n_examples: int = 1000

    def with_output_visited(self, visited: int) -> "WorkloadShape":
        return replace(self, output_visited=visited)


@dataclass
class DesignPoint:
    """One evaluated configuration."""

    frequency_mhz: float
    embed_dim: int
    cycles_per_example: int
    wall_seconds: float
    average_power_w: float
    energy_joules: float
    resources: ResourceEstimate

    @property
    def examples_per_second(self) -> float:
        return 1.0 / (self.wall_seconds or float("inf"))

    @property
    def fits(self) -> bool:
        return self.resources.fits()


def evaluate_design_point(
    workload: WorkloadShape,
    config: HwConfig,
    model_config: MannConfig,
) -> DesignPoint:
    """Analytic time/energy/resources for one configuration."""
    cycle_model = CycleModel(config.latency)
    phases = cycle_model.example_cycles(
        list(workload.sentence_word_counts),
        workload.question_words,
        workload.hops,
        workload.output_visited,
    )
    counter = OpCounter(config.latency.embed_dim)
    ops_example = counter.example(
        list(workload.sentence_word_counts),
        workload.question_words,
        workload.hops,
        workload.output_visited,
    )
    # Totals scale linearly with the example count.
    from dataclasses import fields as dc_fields

    total_ops = ExampleOpCounts()
    for f in dc_fields(total_ops):
        setattr(
            total_ops, f.name, getattr(ops_example, f.name) * workload.n_examples
        )

    from repro.hw.pcie import HostInterface

    host = HostInterface(config.calibration)
    stream_words = (
        2 + sum(workload.sentence_word_counts) + workload.question_words
    )
    transfer = host.example_transfer(stream_words, 1)
    interface_seconds = transfer.seconds * workload.n_examples
    interface_energy = transfer.energy_joules * workload.n_examples

    cycles_total = phases.total * workload.n_examples
    wall = cycle_model.wall_time(cycles_total, interface_seconds, config)
    energy = EnergyModel(config.calibration).run_energy(
        total_ops, interface_energy, wall, config.frequency_mhz
    )
    return DesignPoint(
        frequency_mhz=config.frequency_mhz,
        embed_dim=config.latency.embed_dim,
        cycles_per_example=phases.total,
        wall_seconds=wall,
        average_power_w=energy.average_power(wall),
        energy_joules=energy.total,
        resources=estimate_resources(config, model_config),
    )


def frequency_sweep(
    workload: WorkloadShape,
    model_config: MannConfig,
    frequencies_mhz: tuple[float, ...] = (25.0, 50.0, 75.0, 100.0, 150.0, 200.0),
    base_config: HwConfig | None = None,
) -> list[DesignPoint]:
    base = base_config or HwConfig()
    base = base.with_embed_dim(model_config.embed_dim)
    return [
        evaluate_design_point(workload, base.with_frequency(f), model_config)
        for f in frequencies_mhz
    ]


def lane_width_sweep(
    workload: WorkloadShape,
    vocab_size: int,
    widths: tuple[int, ...] = (8, 16, 20, 32, 64),
    frequency_mhz: float = 100.0,
    base_config: HwConfig | None = None,
) -> list[DesignPoint]:
    """Sweep the embedding dimension (= MAC-lane width).

    The Fig. 1 datapath instantiates one lane per embedding dimension,
    so a larger model embedding costs DSPs/LUTs linearly in the lanes
    and *cycles* in the controller (the |E| x |E| matvec issues |E|
    sequential |E|-wide dots) — how the design scales if a bigger MANN
    is deployed on it.
    """
    base = base_config or HwConfig(frequency_mhz=frequency_mhz)
    points = []
    for width in widths:
        model_config = MannConfig(
            vocab_size=vocab_size, embed_dim=width, memory_size=20
        )
        config = base.with_embed_dim(width).with_frequency(frequency_mhz)
        points.append(evaluate_design_point(workload, config, model_config))
    return points


def interface_latency_sweep(
    workload: WorkloadShape,
    model_config: MannConfig,
    latencies_us: tuple[float, ...] = (13.0, 6.0, 3.0, 1.0, 0.25),
    frequency_mhz: float = 100.0,
    base_config: HwConfig | None = None,
) -> list[tuple[float, DesignPoint]]:
    """Generalises the Section V interface ablation to a full curve."""
    base = base_config or HwConfig()
    base = base.with_embed_dim(model_config.embed_dim).with_frequency(
        frequency_mhz
    )
    points = []
    for latency_us in latencies_us:
        calibration = replace(
            base.calibration, pcie_transaction_latency=latency_us * 1e-6
        )
        config = replace(base, calibration=calibration)
        points.append(
            (latency_us, evaluate_design_point(workload, config, model_config))
        )
    return points


def sweep_table(points: list[DesignPoint], title: str) -> TextTable:
    table = TextTable(
        [
            "clock (MHz)",
            "|E|",
            "cycles/example",
            "wall (s)",
            "power (W)",
            "LUT util",
            "DSP util",
            "fits",
        ],
        title=title,
    )
    for p in points:
        util = p.resources.utilisation()
        table.add_row(
            [
                f"{p.frequency_mhz:.0f}",
                str(p.embed_dim),
                str(p.cycles_per_example),
                f"{p.wall_seconds:.4f}",
                f"{p.average_power_w:.2f}",
                f"{util['LUT'] * 100:.1f}%",
                f"{util['DSP'] * 100:.1f}%",
                "yes" if p.fits else "NO",
            ]
        )
    return table
