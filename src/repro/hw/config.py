"""Accelerator configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hw.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.hw.latency import LatencyParams


@dataclass(frozen=True)
class HwConfig:
    """Static configuration of one accelerator instance.

    ``frequency_mhz``     fabric clock (the paper sweeps 25/50/75/100)
    ``latency``           datapath unit latencies / parallelism
    ``fifo_depth``        depth of the inter-module FIFOs
    ``ith_enabled``       inference thresholding in the OUTPUT module
    ``ith_rho``           thresholding constant rho (paper default 1.0)
    ``ith_index_ordering``  silhouette visiting order (Step 3)
    ``mips_backend``      explicit OUTPUT-module search backend name
                          (``repro.mips`` registry). ``None`` derives it
                          from ``ith_enabled`` ("threshold" vs "exact");
                          an explicit name wins over the ITH flag.
    ``overlap_host_transfer``  when True the next example's input stream
                          overlaps compute (the paper's implementation
                          is synchronous per example -> default False;
                          flipping it is an ablation bench)
    """

    frequency_mhz: float = 100.0
    latency: LatencyParams = field(default_factory=LatencyParams)
    calibration: CalibrationConstants = field(default_factory=lambda: DEFAULT_CALIBRATION)
    fifo_depth: int = 16
    ith_enabled: bool = False
    ith_rho: float = 1.0
    ith_index_ordering: bool = True
    mips_backend: str | None = None
    overlap_host_transfer: bool = False

    def __post_init__(self):
        if self.frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        if self.fifo_depth < 1:
            raise ValueError("fifo_depth must be >= 1")
        if not 0.0 < self.ith_rho <= 1.0:
            raise ValueError("ith_rho must be in (0, 1]")

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / (self.frequency_mhz * 1e6)

    @property
    def output_backend(self) -> str:
        """The OUTPUT module's MIPS backend name for this config."""
        if self.mips_backend is not None:
            return self.mips_backend
        return "threshold" if self.ith_enabled else "exact"

    def with_mips_backend(self, name: str | None) -> "HwConfig":
        return replace(self, mips_backend=name)

    def with_frequency(self, frequency_mhz: float) -> "HwConfig":
        return replace(self, frequency_mhz=frequency_mhz)

    def with_ith(
        self, enabled: bool, rho: float | None = None, index_ordering: bool | None = None
    ) -> "HwConfig":
        return replace(
            self,
            ith_enabled=enabled,
            ith_rho=self.ith_rho if rho is None else rho,
            ith_index_ordering=(
                self.ith_index_ordering if index_ordering is None else index_ordering
            ),
        )

    def with_embed_dim(self, embed_dim: int) -> "HwConfig":
        return replace(self, latency=replace(self.latency, embed_dim=embed_dim))
