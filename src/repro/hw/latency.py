"""Closed-form cycle latencies of the accelerator's datapath units.

The Fig. 1 microarchitecture uses |E|-wide parallel lanes (one lane per
embedding dimension) feeding adder trees, plus sequential element-wise
pipelines for the operations that cannot be parallelised on the FPGA
(softmax exponentiation/division, the output-row scan). The formulas
here are shared by the event-driven module simulation and the analytic
timing model, so the two agree cycle-for-cycle by construction of the
modules (tests assert it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def adder_tree_depth(width: int) -> int:
    """Pipeline depth of a binary adder tree reducing ``width`` inputs."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return max(1, math.ceil(math.log2(width))) if width > 1 else 1


@dataclass(frozen=True)
class LatencyParams:
    """Latency characteristics of the datapath units (in cycles).

    Defaults correspond to standard single-precision pipelined FPGA IP:
    one-cycle multiply/add issue, a ~8-cycle exponential unit and a
    ~16-cycle divider, matching the paper's remark that softmax incurs
    exponentiation and division that "cannot be parallelized".
    """

    embed_dim: int = 20
    mac_issue: int = 1  # E-wide multiply-accumulate issue interval
    exp_latency: int = 8
    div_latency: int = 16
    compare_latency: int = 1
    reg_latency: int = 1
    memory_write_latency: int = 1  # one embedded row per cycle (E-wide port)

    @property
    def tree_depth(self) -> int:
        return adder_tree_depth(self.embed_dim)

    # ------------------------------------------------------------------
    # Phase formulas. Every phase returns the cycle count from first
    # input available to last output registered.
    # ------------------------------------------------------------------
    def embed_sentence_cycles(self, n_words: int) -> int:
        """INPUT & WRITE: accumulate one embedding column per word.

        The embedding module reads one |E|-wide column of W_emb per word
        index and accumulates it (Eq. 2). emb_a and emb_c lanes run in
        parallel hardware, so the sentence costs ``n_words`` issue
        cycles plus the accumulate register and the temporal-encoding
        add, then one memory-row write.
        """
        n_words = max(1, int(n_words))
        return n_words * self.mac_issue + 2 * self.reg_latency + self.memory_write_latency

    def embed_question_cycles(self, n_words: int) -> int:
        """READ: embed the question into the initial read key (Eq. 3)."""
        n_words = max(1, int(n_words))
        return n_words * self.mac_issue + self.reg_latency

    def addressing_cycles(self, n_slots: int) -> int:
        """MEM address memory: scores, softmax over ``n_slots`` (Eq. 1).

        Dot products stream one slot per cycle through the multiplier
        lanes and adder tree; each score enters the pipelined exp unit;
        the running exp-sum accumulates behind it. The divider then
        streams one normalised weight per cycle.
        """
        n_slots = max(1, int(n_slots))
        scores = n_slots * self.mac_issue + self.tree_depth
        exponentials = self.exp_latency + self.reg_latency  # pipeline fill
        normalise = self.div_latency + n_slots  # divider fill + stream
        return scores + exponentials + normalise

    def content_read_cycles(self, n_slots: int) -> int:
        """MEM content memory: r = M_c a, one slot MAC per cycle (Eq. 5)."""
        n_slots = max(1, int(n_slots))
        return n_slots * self.mac_issue + self.tree_depth + self.reg_latency

    def controller_cycles(self) -> int:
        """READ: h = r + W_r k (Eq. 4) as E sequential E-wide dots."""
        matvec = self.embed_dim * self.mac_issue + self.tree_depth
        return matvec + self.reg_latency  # + elementwise add of r

    def output_scan_cycles(self, n_visited: int) -> int:
        """OUTPUT: sequential dot-product scan of ``n_visited`` rows.

        One output row per cycle streams through the MAC lanes and adder
        tree; the comparator tracks the running maximum (or the
        per-index threshold when inference thresholding is active).
        """
        n_visited = max(1, int(n_visited))
        return n_visited * self.mac_issue + self.tree_depth + self.compare_latency
