"""Human-readable accelerator run reports.

Turns an :class:`~repro.hw.accelerator.AcceleratorReport` into the text
breakdowns a hardware engineer looks at first: per-phase cycle shares,
per-module busy fractions, the interface/compute wall-time split and
the energy-by-source split.
"""

from __future__ import annotations

from repro.hw.accelerator import AcceleratorReport
from repro.utils.tables import TextTable


def phase_breakdown_table(report: AcceleratorReport) -> TextTable:
    """Cycle share of each pipeline phase (write/question/hops/output)."""
    phases = report.phases
    total = max(1, phases.total)
    table = TextTable(
        ["phase", "cycles", "share"],
        title="Per-phase cycle breakdown",
    )
    for name, cycles in (
        ("control decode", phases.control),
        ("write (embed + memory)", phases.write),
        ("question embed", phases.question),
        ("hops (addressing/read/controller)", phases.hops),
        ("output scan (MIPS)", phases.output),
    ):
        table.add_row([name, str(cycles), f"{100 * cycles / total:.1f}%"])
    table.add_row(["total", str(phases.total), "100.0%"])
    return table


def module_utilisation_table(report: AcceleratorReport) -> TextTable:
    """Busy fraction of each Fig. 1 module over the compute window."""
    total = max(1, report.total_cycles)
    table = TextTable(
        ["module", "busy cycles", "utilisation"],
        title="Module busy fractions (of total compute cycles)",
    )
    for name, busy in sorted(report.module_busy_cycles.items()):
        table.add_row([name, str(busy), f"{100 * busy / total:.1f}%"])
    return table


def wall_time_table(report: AcceleratorReport) -> TextTable:
    """Interface vs compute wall-time split (the Section V bound)."""
    table = TextTable(
        ["component", "seconds", "share"],
        title=f"Wall time at {report.config.frequency_mhz:.0f} MHz",
    )
    wall = max(report.wall_seconds, 1e-12)
    table.add_row(
        [
            "host interface",
            f"{report.interface_seconds:.6f}",
            f"{100 * report.interface_seconds / wall:.1f}%",
        ]
    )
    table.add_row(
        [
            "fabric compute",
            f"{report.compute_seconds:.6f}",
            f"{100 * report.compute_seconds / wall:.1f}%",
        ]
    )
    table.add_row(["total", f"{report.wall_seconds:.6f}", "100.0%"])
    return table


def energy_table(report: AcceleratorReport) -> TextTable:
    """Energy by source: switching, interface, power floor."""
    energy = report.energy
    total = max(energy.total, 1e-12)
    table = TextTable(
        ["source", "joules", "share"],
        title=f"Energy breakdown ({report.average_power_w:.2f} W average)",
    )
    for name, joules in (
        ("datapath switching", energy.switching),
        ("host interface", energy.interface),
        ("static + clock floor", energy.floor),
    ):
        table.add_row([name, f"{joules:.6f}", f"{100 * joules / total:.1f}%"])
    return table


def full_report(report: AcceleratorReport) -> str:
    """All four breakdown tables as one printable block."""
    sections = [
        phase_breakdown_table(report),
        module_utilisation_table(report),
        wall_time_table(report),
        energy_table(report),
    ]
    return "\n\n".join(section.render() for section in sections)
