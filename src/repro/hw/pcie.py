"""Host <-> FPGA interface model (PCIe FIFO stream).

The accelerator receives weights and inference data "in the form of
streams through a FIFO queue" over PCIe. For small credit-based FIFO
transactions the effective bandwidth is far below PCIe line rate and a
fixed round-trip latency is paid per message; this frequency-independent
term is what makes the paper's measured times scale sub-linearly with
clock frequency (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.calibration import CalibrationConstants


@dataclass
class TransferStats:
    """Accumulated host-interface traffic."""

    bytes_in: int = 0
    bytes_out: int = 0
    transactions: int = 0
    seconds: float = 0.0
    energy_joules: float = 0.0

    def __add__(self, other: "TransferStats") -> "TransferStats":
        return TransferStats(
            self.bytes_in + other.bytes_in,
            self.bytes_out + other.bytes_out,
            self.transactions + other.transactions,
            self.seconds + other.seconds,
            self.energy_joules + other.energy_joules,
        )


class HostInterface:
    """Timing/energy model of the PCIe FIFO stream."""

    def __init__(self, calibration: CalibrationConstants):
        self.calibration = calibration

    def transfer_time(self, n_bytes: int, n_transactions: int = 1) -> float:
        """Seconds to move ``n_bytes`` in ``n_transactions`` messages."""
        if n_bytes < 0 or n_transactions < 0:
            raise ValueError("negative transfer size")
        c = self.calibration
        return n_bytes / c.pcie_bandwidth + n_transactions * c.pcie_transaction_latency

    def words_to_bytes(self, n_words: int) -> int:
        return n_words * self.calibration.bytes_per_word

    def example_transfer(self, words_in: int, words_out: int) -> TransferStats:
        """Per-example stream: story+question in, answer out.

        Modelled as two transactions (one host->FPGA burst carrying the
        control words and input stream, one FPGA->host for the answer),
        matching the synchronous request/response protocol of Fig. 1.
        """
        bytes_in = self.words_to_bytes(words_in)
        bytes_out = self.words_to_bytes(max(1, words_out))
        seconds = self.transfer_time(bytes_in, 1) + self.transfer_time(bytes_out, 1)
        energy = (bytes_in + bytes_out) * self.calibration.pcie_energy_per_byte
        return TransferStats(bytes_in, bytes_out, 2, seconds, energy)

    def model_transfer(self, n_weight_bytes: int) -> TransferStats:
        """One-off transfer of the trained model parameters.

        Large DMA bursts reach much better efficiency than the tiny
        per-example messages; modelled as a single bulk transaction at
        the bulk bandwidth.
        """
        c = self.calibration
        seconds = (
            n_weight_bytes / c.pcie_bulk_bandwidth + c.pcie_transaction_latency
        )
        energy = n_weight_bytes * c.pcie_energy_per_byte
        return TransferStats(n_weight_bytes, 0, 1, seconds, energy)
