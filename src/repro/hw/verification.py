"""First-class co-simulation checking.

``verify_against_golden`` replays a batch through the event-driven
accelerator and the pure-software golden engine simultaneously,
comparing every observable — predictions, memory contents, read keys,
attention weights — and returns a structured divergence report. This is
the reproduction's equivalent of the paper's "implementation and
validation of this approach on an FPGA" claim: the hardware pipeline is
functionally proven against the reference model, example by example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.babi.dataset import EncodedBatch
from repro.hw.accelerator import MannAccelerator
from repro.hw.kernel import Environment
from repro.mann.inference import InferenceEngine


@dataclass
class ExampleVerification:
    """Per-example divergence measurements (0.0 = bit-exact)."""

    index: int
    prediction_match: bool
    memory_max_error: float
    key_max_error: float
    attention_max_error: float
    read_max_error: float

    @property
    def functional_match(self) -> bool:
        return self.prediction_match and self.worst_error == 0.0

    @property
    def worst_error(self) -> float:
        return max(
            self.memory_max_error,
            self.key_max_error,
            self.attention_max_error,
            self.read_max_error,
        )


@dataclass
class VerificationReport:
    """Aggregate co-simulation outcome for a batch."""

    examples: list[ExampleVerification] = field(default_factory=list)

    @property
    def n_examples(self) -> int:
        return len(self.examples)

    @property
    def all_predictions_match(self) -> bool:
        return all(e.prediction_match for e in self.examples)

    @property
    def bit_exact(self) -> bool:
        return all(e.functional_match for e in self.examples)

    @property
    def worst_error(self) -> float:
        return max((e.worst_error for e in self.examples), default=0.0)

    def failures(self) -> list[ExampleVerification]:
        return [e for e in self.examples if not e.functional_match]

    def summary(self) -> str:
        status = "BIT-EXACT" if self.bit_exact else "DIVERGENT"
        return (
            f"co-simulation {status}: {self.n_examples} examples, "
            f"{len(self.failures())} failures, "
            f"worst numeric error {self.worst_error:.3e}"
        )


def _max_error(a: np.ndarray, b: np.ndarray) -> float:
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).max())


def verify_against_golden(
    accelerator: MannAccelerator,
    batch: EncodedBatch,
    max_examples: int | None = None,
) -> VerificationReport:
    """Run accelerator and golden engine side by side over ``batch``.

    Uses a fresh pipeline per example so module-internal state (MEM
    rows, READ traces) can be inspected after each run.
    """
    engine = InferenceEngine(accelerator.weights)
    report = VerificationReport()
    n = len(batch) if max_examples is None else min(len(batch), max_examples)

    for i in range(n):
        story = batch.stories[i]
        question = batch.questions[i]
        n_sentences = int(batch.story_lengths[i])
        golden = engine.forward_trace(story, question, n_sentences)

        env = Environment()
        fifo_in, fifo_out, _control, _iw, mem, read, output = (
            accelerator._build_pipeline(env)
        )
        label, _cmp, _early, _cycles, _logit = accelerator.run_example(
            env, fifo_in, fifo_out, mem, story, question, n_sentences
        )

        golden_mem_a = golden.mem_a
        golden_mem_c = golden.mem_c
        hw_mem_a = mem.mem_a[:n_sentences]
        hw_mem_c = mem.mem_c[:n_sentences]

        key_error = max(
            (_max_error(k_hw, k_gold)
             for k_hw, k_gold in zip(read.trace_keys, golden.keys)),
            default=0.0,
        )
        attention_error = max(
            (_max_error(msg.attention, att)
             for msg, att in zip(read.trace_reads, golden.attentions)),
            default=0.0,
        )
        read_error = max(
            (_max_error(msg.read, r)
             for msg, r in zip(read.trace_reads, golden.reads)),
            default=0.0,
        )

        # With inference thresholding the accelerator may legitimately
        # speculate a different (usually identical) label; compare
        # against the engine the OUTPUT module actually runs.
        expected_label = output.engine.search(golden.h_final).label

        report.examples.append(
            ExampleVerification(
                index=i,
                prediction_match=label == expected_label,
                memory_max_error=max(
                    _max_error(hw_mem_a, golden_mem_a),
                    _max_error(hw_mem_c, golden_mem_c),
                ),
                key_max_error=key_error,
                attention_max_error=attention_error,
                read_max_error=read_error,
            )
        )
    return report
