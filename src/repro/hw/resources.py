"""FPGA resource-utilisation estimates.

First-order LUT/FF/DSP/BRAM budgets per module, derived from the
datapath widths (|E| parallel MAC lanes, adder trees, exp/div units),
checked against the Virtex UltraScale XCVU190 (VCU107 board) capacity.
These are architectural estimates — the reproduction has no synthesis
flow — but they document that the Fig. 1 design fits the paper's part
with ample headroom and they scale correctly with the configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import HwConfig
from repro.mann.config import MannConfig

# Xilinx Virtex UltraScale XCVU190 (the VCU107 device).
VCU107_LUTS = 1_074_240
VCU107_FFS = 2_148_480
VCU107_DSPS = 1_800
VCU107_BRAM_KB = 16_625  # ~132.9 Mb block RAM

# Per-unit first-order costs (single-precision pipelined IP).
_LUT_PER_FP_ADD = 400
_FF_PER_FP_ADD = 500
_LUT_PER_FP_MUL = 100  # DSP-mapped; LUTs for alignment logic
_FF_PER_FP_MUL = 200
_DSP_PER_FP_MUL = 2
_LUT_PER_EXP = 2_500
_LUT_PER_DIV = 3_000
_LUT_PER_FIFO = 150


@dataclass
class ResourceEstimate:
    """Estimated utilisation for one accelerator configuration."""

    luts: int
    ffs: int
    dsps: int
    bram_kb: float

    def utilisation(self) -> dict[str, float]:
        return {
            "LUT": self.luts / VCU107_LUTS,
            "FF": self.ffs / VCU107_FFS,
            "DSP": self.dsps / VCU107_DSPS,
            "BRAM": self.bram_kb / VCU107_BRAM_KB,
        }

    def fits(self) -> bool:
        return all(v <= 1.0 for v in self.utilisation().values())


def estimate_resources(
    hw_config: HwConfig, model_config: MannConfig, n_fifos: int = 8
) -> ResourceEstimate:
    """Estimate utilisation of the Fig. 1 design.

    Datapath: the INPUT & WRITE module needs 2|E| adders (emb_a/emb_c
    lanes); MEM needs |E| multipliers + an |E|-input adder tree + exp +
    div; READ mirrors MEM's MAC array for the controller matvec; OUTPUT
    another |E|-wide MAC array plus the comparator. Weights live in
    block RAM.
    """
    e = hw_config.latency.embed_dim
    adders = 2 * e + 3 * (e - 1) + 3 * e  # lanes + trees + accumulators
    multipliers = 3 * e  # MEM, READ, OUTPUT MAC arrays
    luts = (
        adders * _LUT_PER_FP_ADD
        + multipliers * _LUT_PER_FP_MUL
        + _LUT_PER_EXP
        + _LUT_PER_DIV
        + n_fifos * _LUT_PER_FIFO
        + 20_000  # control, host interface, decode
    )
    ffs = adders * _FF_PER_FP_ADD + multipliers * _FF_PER_FP_MUL + 30_000
    dsps = multipliers * _DSP_PER_FP_MUL

    v, l = model_config.vocab_size, model_config.memory_size
    weight_words = 3 * v * e + e * e + v * e + 2 * l * e
    memory_words = 2 * l * e
    bram_kb = (weight_words + memory_words) * 4 / 1024
    return ResourceEstimate(luts=luts, ffs=ffs, dsps=dsps, bram_kb=bram_kb)
