"""Analytic timing model of the accelerator.

Computes the same per-example cycle counts as the event-driven module
simulation in closed form (tests assert exact equality), and converts
cycles plus host-interface time into wall time:

    t(f) = T_interface + cycles / f

The interface term is frequency independent, which reproduces the
paper's sub-linear frequency scaling and the observation that at high
clock rates "inference time is dominated by the interface between the
host and the FPGA" (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import HwConfig
from repro.hw.latency import LatencyParams


@dataclass
class PhaseCycles:
    """Per-phase cycle breakdown of one QA example."""

    control: int = 0
    write: int = 0
    question: int = 0
    hops: int = 0
    output: int = 0

    @property
    def total(self) -> int:
        return self.control + self.write + self.question + self.hops + self.output

    def __add__(self, other: "PhaseCycles") -> "PhaseCycles":
        return PhaseCycles(
            self.control + other.control,
            self.write + other.write,
            self.question + other.question,
            self.hops + other.hops,
            self.output + other.output,
        )


class CycleModel:
    """Closed-form per-example cycle counts for a given configuration."""

    def __init__(self, latency: LatencyParams):
        self.latency = latency

    def example_cycles(
        self,
        sentence_word_counts: list[int],
        question_words: int,
        hops: int,
        output_visited: int,
    ) -> PhaseCycles:
        """Cycles for one example, phase by phase.

        The dataflow is sequential across phases (the paper gates the
        read phase on the end of the write stream and the output scan on
        the final hop); within each phase the formulas already model the
        fine-grained pipelining of the |E|-wide lanes.
        """
        lat = self.latency
        n_slots = max(1, len(sentence_word_counts))
        phases = PhaseCycles()
        phases.control = lat.reg_latency  # decode of the start word
        for n_words in sentence_word_counts:
            n = max(1, int(n_words))
            phases.write += n * lat.mac_issue + 2 * lat.reg_latency
        # The last row's memory write is not hidden by a following
        # sentence embedding.
        phases.write += lat.memory_write_latency
        phases.question = lat.embed_question_cycles(max(1, question_words))
        per_hop = (
            lat.addressing_cycles(n_slots)
            + lat.content_read_cycles(n_slots)
            + lat.controller_cycles()
        )
        phases.hops = max(1, hops) * per_hop
        phases.output = lat.output_scan_cycles(max(1, output_visited))
        return phases

    def wall_time(
        self,
        cycles: int,
        interface_seconds: float,
        config: HwConfig,
    ) -> float:
        """Seconds for a run of ``cycles`` compute plus interface time."""
        compute = cycles * config.cycle_time_s
        if config.overlap_host_transfer:
            # Fully overlapped streaming: the slower of the two paths.
            return max(compute, interface_seconds)
        return compute + interface_seconds
