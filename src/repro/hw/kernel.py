"""A minimal discrete-event simulation kernel (simpy-style).

Processes are Python generators that ``yield`` events; the environment
advances simulated time (in clock cycles) and resumes processes when
their events trigger. Only the three primitives the accelerator needs
are implemented: :class:`Timeout`, :class:`Event` (manually triggered)
and process joining (yielding another :class:`Process` waits for its
termination).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator


class Event:
    """A one-shot event; processes waiting on it resume when triggered."""

    __slots__ = ("env", "triggered", "value", "_waiters")

    def __init__(self, env: "Environment"):
        self.env = env
        self.triggered = False
        self.value = None
        self._waiters: list[Process] = []

    def trigger(self, value=None) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for process in self._waiters:
            self.env._schedule(0, process, value)
        self._waiters.clear()

    def _wait(self, process: "Process") -> None:
        if self.triggered:
            self.env._schedule(0, process, self.value)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """An event that triggers ``delay`` cycles in the future."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: int):
        super().__init__(env)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        env._schedule_timeout(delay, self)


class Process(Event):
    """A running generator; itself an event that triggers on return."""

    __slots__ = ("generator", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        env._schedule(0, self, None)

    def _resume(self, value) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes must yield Event/Timeout/Process"
            )
        target._wait(self)


class Environment:
    """Event queue and simulated clock (integer cycles)."""

    def __init__(self):
        self.now = 0
        self._queue: list[tuple[int, int, object, object]] = []
        self._counter = itertools.count()

    # -- primitives -----------------------------------------------------
    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def timeout(self, delay: int) -> Timeout:
        return Timeout(self, int(delay))

    def event(self) -> Event:
        return Event(self)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, delay: int, process: Process, value) -> None:
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), process, value)
        )

    def _schedule_timeout(self, delay: int, event: Timeout) -> None:
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), event, None)
        )

    # -- main loop ------------------------------------------------------
    def run(self, until: int | None = None) -> int:
        """Run until the queue drains (or simulated time passes ``until``).

        Returns the final simulated time.
        """
        while self._queue:
            time, _seq, target, value = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            if isinstance(target, Process):
                target._resume(value)
            else:  # a Timeout reaching its deadline
                target.trigger(value)
        return self.now
