"""Physical calibration constants for the energy/time models.

The paper measured wall power on real hardware; a pure-Python
reproduction cannot. Instead, per-operation switching energies follow
the well-known Horowitz ISSCC 2014 numbers (scaled from 45 nm to a
20 nm UltraScale-class process), static power and interface figures are
set once to land the simulated FPGA in the paper's measured band
(14.7 W at 25 MHz to 20.1 W at 100 MHz) — after which every *trend*
(frequency scaling, ITH deltas, per-task spread, device ordering) is
produced by the simulation, not copied from the paper.

All energies are in joules, times in seconds, bandwidths in bytes/s.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CalibrationConstants:
    """Every tunable physical constant of the reproduction."""

    # -- FPGA switching energy per operation (J) ------------------------
    # Horowitz ISSCC'14: 32-bit FP add ~0.9 pJ, FP mult ~3.7 pJ at 45 nm;
    # scaled by ~0.4x for a 20 nm process, then multiplied by a fabric
    # overhead factor ~10x for FPGA routing/configuration capacitance.
    fpga_energy_mult: float = 15.0e-12
    fpga_energy_add: float = 4.0e-12
    fpga_energy_exp: float = 60.0e-12
    fpga_energy_div: float = 80.0e-12
    fpga_energy_compare: float = 2.0e-12
    fpga_energy_sram_read: float = 5.0e-12  # per 32-bit word (BRAM)
    fpga_energy_sram_write: float = 6.0e-12

    # -- FPGA static/clock power (W) -------------------------------------
    # VCU107 board power floor (fans, DDR PHY, transceivers, leakage).
    fpga_static_power: float = 12.9
    # Clock-tree + idle fabric dynamic power per MHz (W/MHz); gives the
    # measured ~0.072 W/MHz slope between 25 and 100 MHz.
    fpga_clock_power_per_mhz: float = 0.072

    # -- Host interface (PCIe gen3 x8 with tiny FIFO transactions) ------
    # Effective streaming bandwidth for small credit-based transfers is
    # far below line rate; round-trip latency per transaction dominates
    # and is frequency independent (the paper's interface bound).
    pcie_bandwidth: float = 180.0e6  # bytes/s effective for FIFO streams
    pcie_bulk_bandwidth: float = 2.5e9  # bytes/s for large DMA bursts
    pcie_transaction_latency: float = 13.0e-6  # s per host<->FPGA message
    pcie_energy_per_byte: float = 200.0e-12
    bytes_per_word: int = 4  # fp32 stream words

    # -- GPU baseline (NVIDIA TITAN V-class) ------------------------------
    # MANN inference issues a chain of tiny dependent kernels; each pays
    # a launch/sync cost far above its arithmetic at bAbI sizes.
    gpu_kernel_launch_overhead: float = 7.5e-6  # s per kernel
    gpu_flops_effective: float = 0.8e12  # small-matvec effective FLOP/s
    gpu_memory_bandwidth: float = 650.0e9
    gpu_power: float = 45.4  # W, measured-average class value
    gpu_transfer_bandwidth: float = 6.0e9  # pinned host<->device
    gpu_transfer_latency: float = 10.0e-6

    # -- CPU baseline (Intel i9-7900X-class) ------------------------------
    # Framework op-graph dispatch (TensorFlow-style) costs microseconds
    # per primitive node, which dominates these tiny recurrent matvecs;
    # the paper measured the CPU at 0.94x the GPU's speed.
    cpu_op_dispatch_overhead: float = 8.7e-6  # s per primitive op node
    cpu_flops_effective: float = 50.0e9  # effective on tiny matvecs
    cpu_memory_bandwidth: float = 60.0e9
    cpu_power: float = 23.3  # W package average under this load

    def fpga_power_floor(self, frequency_mhz: float) -> float:
        """Static + clock-tree power before datapath activity (W)."""
        return self.fpga_static_power + self.fpga_clock_power_per_mhz * frequency_mhz


DEFAULT_CALIBRATION = CalibrationConstants()
