"""Top-level accelerator: assembles Fig. 1 and runs QA workloads.

``MannAccelerator`` instantiates the five modules on a fresh
discrete-event environment, wires the FIFOs, streams encoded examples
through the host interface model and collects a full
:class:`AcceleratorReport`: predictions (co-simulated against the golden
engine), per-phase cycles, wall time at the configured frequency, energy
and average power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.babi.dataset import EncodedBatch
from repro.hw.config import HwConfig
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment
from repro.hw.modules import (
    ControlModule,
    InputWriteModule,
    MemModule,
    OutputModule,
    QuestionMsg,
    ReadModule,
    SentenceMsg,
    StartExampleMsg,
)
from repro.hw.opcounts import ExampleOpCounts, OpCounter
from repro.hw.pcie import HostInterface, TransferStats
from repro.hw.timing import CycleModel, PhaseCycles
from repro.mann.weights import MannWeights
from repro.mips.backend import MipsBackend, get_backend
from repro.mips.thresholding import ThresholdModel


@dataclass
class ExampleRun:
    """Result of one QA example on the accelerator."""

    prediction: int
    comparisons: int
    early_exit: bool
    cycles: int
    phases: PhaseCycles
    interface: TransferStats
    ops: ExampleOpCounts
    logit: float = float("nan")  # winning output score from the OUTPUT scan


@dataclass
class AcceleratorReport:
    """Aggregate result of a workload run."""

    config: HwConfig
    predictions: np.ndarray
    accuracy: float
    total_cycles: int
    phases: PhaseCycles
    compute_seconds: float
    interface_seconds: float
    wall_seconds: float
    energy: EnergyBreakdown
    average_power_w: float
    ops: ExampleOpCounts
    mean_comparisons: float
    early_exit_rate: float
    module_busy_cycles: dict[str, int] = field(default_factory=dict)
    examples: list[ExampleRun] = field(default_factory=list)

    @property
    def flops(self) -> int:
        return self.ops.flops

    @property
    def energy_joules(self) -> float:
        return self.energy.total

    def flops_per_kilojoule(self) -> float:
        return self.flops / (self.energy_joules / 1e3)


class MannAccelerator:
    """The FPGA accelerator of Fig. 1 as a cycle-level simulation."""

    def __init__(
        self,
        weights: MannWeights,
        config: HwConfig,
        threshold_model: ThresholdModel | None = None,
    ):
        if config.latency.embed_dim != weights.config.embed_dim:
            raise ValueError(
                f"latency embed_dim {config.latency.embed_dim} != model "
                f"embed_dim {weights.config.embed_dim}"
            )
        backend_cls = get_backend(config.output_backend)  # fail fast on unknown names
        needs_model = getattr(backend_cls, "requires_threshold_model", False)
        if needs_model and threshold_model is None:
            raise ValueError(
                f"the {config.output_backend!r} backend requires a fitted "
                "ThresholdModel"
            )
        self.weights = weights
        self.config = config
        self.threshold_model = threshold_model
        self.host = HostInterface(config.calibration)
        self.energy_model = EnergyModel(config.calibration)
        self.cycle_model = CycleModel(config.latency)
        self.op_counter = OpCounter(config.latency.embed_dim)

    # ------------------------------------------------------------------
    def _build_mips_engine(self) -> MipsBackend:
        """Instantiate the OUTPUT module's search engine via the
        ``repro.mips`` registry — any registered backend co-simulates."""
        return get_backend(self.config.output_backend).build(
            self.weights.w_o,
            threshold_model=self.threshold_model,
            rho=self.config.ith_rho,
            index_ordering=self.config.ith_index_ordering,
        )

    def _build_pipeline(self, env: Environment):
        """Instantiate modules and FIFOs on a fresh environment."""
        depth = self.config.fifo_depth
        lat = self.config.latency
        fifo_in = Fifo(env, depth, "FIFO_IN")
        fifo_out = Fifo(env, depth, "FIFO_OUT")
        to_write = Fifo(env, depth, "ctrl->write")
        to_read = Fifo(env, depth, "ctrl->read")
        write_to_mem = Fifo(env, depth, "write->mem")
        key_fifo = Fifo(env, 2, "read->mem")
        read_vec_fifo = Fifo(env, 2, "mem->read")
        search_fifo = Fifo(env, 2, "read->output")
        answer_fifo = Fifo(env, 2, "output->ctrl")
        # The write-commit acknowledgement is a credit counter in
        # hardware; it must hold one credit per memory slot or the MEM
        # write port can stall against a CONTROL module that is still
        # forwarding sentences (deadlock at small FIFO depths).
        ack_fifo = Fifo(
            env,
            max(depth, self.weights.config.memory_size),
            "mem->ctrl.ack",
        )

        control = ControlModule(
            env, lat, fifo_in, fifo_out, to_write, to_read, answer_fifo, ack_fifo
        )
        input_write = InputWriteModule(
            env, lat, self.weights, to_write, write_to_mem
        )
        mem = MemModule(
            env,
            lat,
            self.weights.config.memory_size,
            write_to_mem,
            key_fifo,
            read_vec_fifo,
            ack_fifo,
        )
        read = ReadModule(
            env, lat, self.weights, to_read, key_fifo, read_vec_fifo, search_fifo
        )
        output = OutputModule(
            env, lat, self._build_mips_engine(), search_fifo, answer_fifo
        )
        return fifo_in, fifo_out, control, input_write, mem, read, output

    # ------------------------------------------------------------------
    def run_example(
        self,
        env: Environment,
        fifo_in: Fifo,
        fifo_out: Fifo,
        mem: MemModule,
        story: np.ndarray,
        question: np.ndarray,
        n_sentences: int,
    ) -> tuple[int, int, bool, int, float]:
        """Stream one example; returns (label, comparisons, early, cycles, logit)."""
        mem.reset_example()
        start_cycle = env.now
        hops = self.weights.config.hops

        def host():
            yield fifo_in.put(StartExampleMsg(n_sentences, hops))
            for slot in range(n_sentences):
                yield fifo_in.put(SentenceMsg(slot, story[slot]))
            yield fifo_in.put(QuestionMsg(question))
            answer = yield fifo_out.get()
            return answer

        process = env.process(host(), name="HOST")
        env.run()
        answer = process.value
        return (
            answer.label,
            answer.comparisons,
            answer.early_exit,
            env.now - start_cycle,
            answer.logit,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        batch: EncodedBatch,
        include_model_transfer: bool = True,
        keep_examples: bool = False,
    ) -> AcceleratorReport:
        """Run a whole encoded batch through the event simulation."""
        env = Environment()
        fifo_in, fifo_out, control, input_write, mem, read, output = (
            self._build_pipeline(env)
        )

        total_interface = TransferStats()
        if include_model_transfer:
            total_interface += self.host.model_transfer(self.weights.nbytes())

        total_ops = ExampleOpCounts()
        total_phases = PhaseCycles()
        total_cycles = 0
        predictions = np.zeros(len(batch), dtype=np.int64)
        comparisons = np.zeros(len(batch), dtype=np.int64)
        early = np.zeros(len(batch), dtype=bool)
        examples: list[ExampleRun] = []

        for i in range(len(batch)):
            n_sentences = int(batch.story_lengths[i])
            story = batch.stories[i]
            question = batch.questions[i]
            label, n_cmp, early_exit, cycles, logit = self.run_example(
                env, fifo_in, fifo_out, mem, story, question, n_sentences
            )
            predictions[i] = label
            comparisons[i] = n_cmp
            early[i] = early_exit

            word_counts = [
                int(np.count_nonzero(story[s])) for s in range(n_sentences)
            ]
            question_words = int(np.count_nonzero(question))
            phases = self.cycle_model.example_cycles(
                word_counts, question_words, self.weights.config.hops, n_cmp
            )
            ops = self.op_counter.example(
                word_counts, question_words, self.weights.config.hops, n_cmp
            )
            stream_in = 2 + sum(word_counts) + question_words  # + control words
            transfer = self.host.example_transfer(stream_in, 1)

            total_phases = total_phases + phases
            total_ops = total_ops + ops
            total_cycles += cycles
            total_interface += transfer
            if keep_examples:
                examples.append(
                    ExampleRun(
                        label, n_cmp, early_exit, cycles, phases, transfer, ops, logit
                    )
                )

        compute_seconds = total_cycles * self.config.cycle_time_s
        wall_seconds = self.cycle_model.wall_time(
            total_cycles, total_interface.seconds, self.config
        )
        energy = self.energy_model.run_energy(
            total_ops,
            total_interface.energy_joules,
            wall_seconds,
            self.config.frequency_mhz,
        )
        answers = getattr(batch, "answers", None)
        accuracy = (
            float((predictions == answers).mean()) if answers is not None else 0.0
        )
        return AcceleratorReport(
            config=self.config,
            predictions=predictions,
            accuracy=accuracy,
            total_cycles=total_cycles,
            phases=total_phases,
            compute_seconds=compute_seconds,
            interface_seconds=total_interface.seconds,
            wall_seconds=wall_seconds,
            energy=energy,
            average_power_w=energy.average_power(wall_seconds),
            ops=total_ops,
            mean_comparisons=float(comparisons.mean()),
            early_exit_rate=float(early.mean()),
            module_busy_cycles={
                "CONTROL": control.busy_cycles,
                "INPUT&WRITE": input_write.busy_cycles,
                "MEM": mem.busy_cycles,
                "READ": read.busy_cycles,
                "OUTPUT": output.busy_cycles,
            },
            examples=examples,
        )
