"""Energy accounting for the FPGA accelerator.

Total energy = datapath switching energy (per-op energies times the
operation counts) + interface energy + power-floor energy (static
leakage, fans, clock tree) integrated over the run's wall time. Average
power is energy/time; because the power floor accrues over the
frequency-independent interface time too, average power rises with
frequency exactly as the paper measured (14.7 W at 25 MHz -> 20.1 W at
100 MHz) and rises slightly when inference thresholding shortens the
run (Table I's ITH rows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.calibration import CalibrationConstants
from repro.hw.opcounts import ExampleOpCounts


@dataclass
class EnergyBreakdown:
    """Joules by source over one run."""

    switching: float = 0.0
    interface: float = 0.0
    floor: float = 0.0

    @property
    def total(self) -> float:
        return self.switching + self.interface + self.floor

    def average_power(self, seconds: float) -> float:
        if seconds <= 0:
            raise ValueError("run time must be positive")
        return self.total / seconds


class EnergyModel:
    """Maps op counts + wall time to an :class:`EnergyBreakdown`."""

    def __init__(self, calibration: CalibrationConstants):
        self.calibration = calibration

    def switching_energy(self, ops: ExampleOpCounts) -> float:
        c = self.calibration
        return (
            ops.mults * c.fpga_energy_mult
            + ops.adds * c.fpga_energy_add
            + ops.exps * c.fpga_energy_exp
            + ops.divs * c.fpga_energy_div
            + ops.compares * c.fpga_energy_compare
            + ops.sram_reads * c.fpga_energy_sram_read
            + ops.sram_writes * c.fpga_energy_sram_write
        )

    def run_energy(
        self,
        ops: ExampleOpCounts,
        interface_energy: float,
        wall_time_s: float,
        frequency_mhz: float,
    ) -> EnergyBreakdown:
        floor = self.calibration.fpga_power_floor(frequency_mhz) * wall_time_s
        return EnergyBreakdown(
            switching=self.switching_energy(ops),
            interface=interface_energy,
            floor=floor,
        )
