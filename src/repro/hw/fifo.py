"""Bounded FIFO channel with backpressure for the dataflow modules."""

from __future__ import annotations

from collections import deque

from repro.hw.kernel import Environment, Event


class Fifo:
    """A FIFO queue of finite capacity connecting two modules.

    ``put`` blocks (the producing process waits) while the queue is
    full; ``get`` blocks while it is empty — exactly the handshake of a
    hardware FIFO with full/empty flags.
    """

    def __init__(self, env: Environment, capacity: int, name: str = "fifo"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, object]] = deque()
        self.max_occupancy = 0
        self.total_pushed = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def put(self, item) -> Event:
        """Event that triggers once ``item`` is enqueued."""
        event = self.env.event()
        if not self.is_full:
            self._enqueue(item)
            event.trigger(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Event that triggers with the next item once available."""
        event = self.env.event()
        if self._items:
            value = self._items.popleft()
            self._drain_putters()
            event.trigger(value)
        else:
            self._getters.append(event)
        return event

    # -- internals -------------------------------------------------------
    def _enqueue(self, item) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
            return
        self._items.append(item)
        self.total_pushed += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))

    def _drain_putters(self) -> None:
        while self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._enqueue(item)
            event.trigger(None)
