"""Soft-error (SEU) fault injection on the accelerator's weight memory.

FPGA block RAM is susceptible to single-event upsets; a deployed
inference accelerator holding its weights on-chip (as the Fig. 1 design
does) degrades gracefully or catastrophically depending on precision
and bit position. This module flips random bits in the fixed-point
weight codes and measures the accuracy impact — the reliability
analysis an FPGA deployment study would run on top of the quantization
extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mann.quantize import QFormat
from repro.mann.weights import MannWeights

_WEIGHT_FIELDS = ("w_emb_a", "w_emb_c", "w_emb_q", "w_r", "w_o", "t_a", "t_c")


@dataclass
class FaultInjectionResult:
    """Outcome of one fault-injection pass."""

    weights: MannWeights
    n_bits_total: int
    n_flips: int
    flipped_fields: dict[str, int]

    @property
    def bit_error_rate(self) -> float:
        return self.n_flips / self.n_bits_total if self.n_bits_total else 0.0


def flip_bits_in_codes(
    codes: np.ndarray,
    n_flips: int,
    total_bits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Flip ``n_flips`` uniformly random (element, bit) positions.

    ``codes`` are two's-complement integers of width ``total_bits``.
    The same position may be drawn twice (flipping back), matching
    independent upsets.
    """
    if n_flips < 0:
        raise ValueError("n_flips must be non-negative")
    if total_bits < 1:
        raise ValueError("total_bits must be positive")
    flat = codes.reshape(-1).copy()
    if flat.size == 0 or n_flips == 0:
        return flat.reshape(codes.shape)
    mask = (1 << total_bits) - 1
    sign_bit = 1 << (total_bits - 1)
    elements = rng.integers(0, flat.size, size=n_flips)
    bits = rng.integers(0, total_bits, size=n_flips)
    for element, bit in zip(elements, bits):
        unsigned = int(flat[element]) & mask
        unsigned ^= 1 << int(bit)
        # Back to signed two's complement.
        value = unsigned - (1 << total_bits) if unsigned & sign_bit else unsigned
        flat[element] = value
    return flat.reshape(codes.shape)


def inject_weight_faults(
    weights: MannWeights,
    qformat: QFormat,
    bit_error_rate: float,
    seed: int = 0,
) -> FaultInjectionResult:
    """Quantize the weights and flip bits at ``bit_error_rate``.

    The returned weights carry the dequantized (possibly corrupted)
    values and run through every engine unchanged.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError("bit_error_rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    corrupted: dict[str, np.ndarray] = {}
    flipped_fields: dict[str, int] = {}
    n_bits_total = 0
    n_flips_total = 0
    for name in _WEIGHT_FIELDS:
        matrix = getattr(weights, name)
        codes = qformat.to_integers(matrix)
        n_bits = codes.size * qformat.total_bits
        n_bits_total += n_bits
        n_flips = int(rng.binomial(n_bits, bit_error_rate))
        flipped_fields[name] = n_flips
        n_flips_total += n_flips
        corrupted[name] = qformat.from_integers(
            flip_bits_in_codes(codes, n_flips, qformat.total_bits, rng)
        )
    return FaultInjectionResult(
        weights=MannWeights(config=weights.config, **corrupted),
        n_bits_total=n_bits_total,
        n_flips=n_flips_total,
        flipped_fields=flipped_fields,
    )


def seu_sensitivity_sweep(
    weights: MannWeights,
    evaluate,
    qformat: QFormat = QFormat(3, 12),
    bit_error_rates: tuple[float, ...] = (0.0, 1e-5, 1e-4, 1e-3, 1e-2),
    trials: int = 3,
    seed: int = 0,
) -> list[tuple[float, float, float]]:
    """Accuracy vs bit-error rate, averaged over ``trials`` injections.

    Returns (rate, mean accuracy, mean flips) tuples. ``evaluate`` maps
    a ``MannWeights`` to accuracy in [0, 1].
    """
    results = []
    for rate in bit_error_rates:
        accuracies = []
        flips = []
        for trial in range(max(1, trials)):
            injected = inject_weight_faults(
                weights, qformat, rate, seed=seed + 101 * trial
            )
            accuracies.append(float(evaluate(injected.weights)))
            flips.append(injected.n_flips)
        results.append(
            (rate, float(np.mean(accuracies)), float(np.mean(flips)))
        )
    return results
