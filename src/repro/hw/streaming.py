"""Streaming (pipelined) execution mode with a double-buffered memory.

The paper's implementation is synchronous: the host sends one example,
waits for the answer, sends the next — which is why the interface
dominates at high clocks. A natural future-work extension (enabled by
the dataflow architecture) is to double-buffer the MEM module: while
the READ/OUTPUT path answers example k from bank A, the INPUT & WRITE
path embeds example k+1 into bank B, and the host streams example k+2.

With that structure the steady-state initiation interval of the
pipeline is the *bottleneck stage*, not the stage sum:

    II = max(T_transfer, T_write, T_read + T_output)

This module provides both the analytic throughput model and a
discrete-event simulation of the two-stage pipeline (on the same
kernel/FIFO substrate as the main accelerator) that validates it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.babi.dataset import EncodedBatch
from repro.hw.config import HwConfig
from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment
from repro.hw.pcie import HostInterface
from repro.hw.timing import CycleModel


@dataclass
class StageCycles:
    """Per-example stage costs of the two-stage pipeline."""

    transfer_cycles: int  # host stream, expressed in fabric cycles
    write_cycles: int
    read_output_cycles: int

    @property
    def bottleneck(self) -> int:
        return max(self.transfer_cycles, self.write_cycles, self.read_output_cycles)

    @property
    def sequential_total(self) -> int:
        return self.transfer_cycles + self.write_cycles + self.read_output_cycles


@dataclass
class StreamingReport:
    """Outcome of a streaming run."""

    n_examples: int
    stage_cycles: list[StageCycles]
    total_cycles_streaming: int
    total_cycles_sequential: int

    @property
    def speedup(self) -> float:
        return self.total_cycles_sequential / max(1, self.total_cycles_streaming)

    def wall_seconds(self, config: HwConfig) -> float:
        return self.total_cycles_streaming * config.cycle_time_s


def stage_cycles_for_batch(
    batch: EncodedBatch,
    config: HwConfig,
    hops: int,
    output_visited: np.ndarray | int,
) -> list[StageCycles]:
    """Compute the three stage costs for every example of a batch.

    ``output_visited`` is a per-example array (from an accelerator run
    with or without thresholding) or a constant.
    """
    model = CycleModel(config.latency)
    host = HostInterface(config.calibration)
    visited = (
        np.full(len(batch), output_visited)
        if np.isscalar(output_visited)
        else np.asarray(output_visited)
    )
    stages = []
    for i in range(len(batch)):
        n = int(batch.story_lengths[i])
        words = [int((batch.stories[i, s] != 0).sum()) for s in range(n)]
        q_words = int((batch.questions[i] != 0).sum())
        phases = model.example_cycles(words, q_words, hops, int(visited[i]))
        stream_words = 2 + sum(words) + q_words
        transfer_seconds = host.example_transfer(stream_words, 1).seconds
        transfer_cycles = int(
            np.ceil(transfer_seconds / config.cycle_time_s)
        )
        stages.append(
            StageCycles(
                transfer_cycles=transfer_cycles,
                write_cycles=phases.control + phases.write,
                read_output_cycles=phases.question + phases.hops + phases.output,
            )
        )
    return stages


def analytic_streaming_cycles(stages: list[StageCycles]) -> int:
    """Classic flow-shop recurrence with *unbounded* inter-stage buffers:

        finish_transfer[k] = finish_transfer[k-1] + t_k
        finish_write[k]    = max(finish_transfer[k], finish_write[k-1]) + w_k
        finish_read[k]     = max(finish_write[k], finish_read[k-1]) + r_k

    This is a lower bound on the double-buffered hardware, which has
    only two memory banks (the event simulation models that blocking
    exactly); for identical stage costs the bound is tight.
    """
    transfer_done = 0
    write_done = 0
    read_done = 0
    for stage in stages:
        transfer_done = transfer_done + stage.transfer_cycles
        write_done = max(transfer_done, write_done) + stage.write_cycles
        read_done = max(write_done, read_done) + stage.read_output_cycles
    return read_done


def simulate_streaming(stages: list[StageCycles]) -> int:
    """Event-driven simulation of the same pipeline.

    Three processes (host stream, write path, read/output path) connected
    by depth-1 FIFOs (one per memory bank in flight); the double buffer
    allows exactly one example to be written while another is read.
    """
    env = Environment()
    to_write = Fifo(env, 1, "host->write")
    to_read = Fifo(env, 1, "write->read (bank handoff)")
    done = {"cycles": 0}

    def host():
        for index, stage in enumerate(stages):
            yield env.timeout(stage.transfer_cycles)
            yield to_write.put(index)

    def writer():
        for _ in stages:
            index = yield to_write.get()
            yield env.timeout(stages[index].write_cycles)
            yield to_read.put(index)

    def reader():
        for _ in stages:
            index = yield to_read.get()
            yield env.timeout(stages[index].read_output_cycles)
        done["cycles"] = env.now

    env.process(host())
    env.process(writer())
    env.process(reader())
    env.run()
    return done["cycles"]


def run_streaming(
    batch: EncodedBatch,
    config: HwConfig,
    hops: int,
    output_visited: np.ndarray | int,
) -> StreamingReport:
    """Evaluate the streaming pipeline over a batch.

    The event simulation (true two-bank blocking behaviour) is the
    source of truth; it must land between the unbounded-buffer lower
    bound and the fully sequential upper bound.
    """
    stages = stage_cycles_for_batch(batch, config, hops, output_visited)
    streaming = simulate_streaming(stages)
    lower_bound = analytic_streaming_cycles(stages)
    sequential = sum(stage.sequential_total for stage in stages)
    if not lower_bound <= streaming <= sequential:
        raise AssertionError(
            f"streaming cycles {streaming} outside "
            f"[{lower_bound}, {sequential}]"
        )
    return StreamingReport(
        n_examples=len(stages),
        stage_cycles=stages,
        total_cycles_streaming=streaming,
        total_cycles_sequential=sequential,
    )
