"""Cycle-level simulation of the FPGA accelerator (Fig. 1).

Layers
------
``kernel``       generic discrete-event simulation engine (processes,
                 timeouts, stores) — the substrate every module runs on.
``fifo``         bounded FIFO channels with backpressure.
``latency``      closed-form per-phase cycle counts derived from the
                 microarchitecture (adder trees, exp/div pipelines).
``modules``      the five Fig. 1 modules as event-driven processes.
``accelerator``  top level: builds the dataflow, runs encoded QA
                 examples, co-simulates against the golden engine.
``timing``       analytic timing model (proven equal to the event
                 simulation by tests; used for large parameter sweeps).
``pcie``         host-interface (PCIe/FIFO stream) transfer model.
``energy``       switching + static energy accounting -> power.
``calibration``  all physical constants in one place, with provenance.
``resources``    FPGA LUT/FF/DSP/BRAM utilisation estimates.
"""

from repro.hw.accelerator import AcceleratorReport, MannAccelerator
from repro.hw.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.hw.config import HwConfig
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.fifo import Fifo
from repro.hw.kernel import Environment, Process
from repro.hw.latency import LatencyParams, adder_tree_depth
from repro.hw.opcounts import ExampleOpCounts, OpCounter
from repro.hw.pcie import HostInterface, TransferStats
from repro.hw.report import full_report
from repro.hw.resources import ResourceEstimate, estimate_resources
from repro.hw.sweep import (
    DesignPoint,
    WorkloadShape,
    evaluate_design_point,
    frequency_sweep,
    interface_latency_sweep,
    lane_width_sweep,
)
from repro.hw.streaming import StreamingReport, run_streaming
from repro.hw.timing import CycleModel, PhaseCycles
from repro.hw.verification import VerificationReport, verify_against_golden

__all__ = [
    "MannAccelerator",
    "AcceleratorReport",
    "HwConfig",
    "CalibrationConstants",
    "DEFAULT_CALIBRATION",
    "EnergyModel",
    "EnergyBreakdown",
    "Fifo",
    "Environment",
    "Process",
    "LatencyParams",
    "adder_tree_depth",
    "OpCounter",
    "ExampleOpCounts",
    "HostInterface",
    "TransferStats",
    "ResourceEstimate",
    "estimate_resources",
    "CycleModel",
    "PhaseCycles",
    "full_report",
    "VerificationReport",
    "verify_against_golden",
    "WorkloadShape",
    "DesignPoint",
    "evaluate_design_point",
    "frequency_sweep",
    "lane_width_sweep",
    "interface_latency_sweep",
    "StreamingReport",
    "run_streaming",
]
