"""Datapath operation counting shared by the energy model and devices.

Counts are *nominal arithmetic operations* of the MANN inference
workload. The FPGA energy model charges each op its switching energy;
the CPU/GPU models derive execution time from the same counts, so every
device is evaluated on an identical workload (as in the paper, where the
same pre-trained model and data are run on all three platforms).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class ExampleOpCounts:
    """Operation counts of a single QA example's inference."""

    mults: int = 0
    adds: int = 0
    exps: int = 0
    divs: int = 0
    compares: int = 0
    sram_reads: int = 0
    sram_writes: int = 0
    stream_words_in: int = 0
    stream_words_out: int = 0
    kernel_launches: int = 0  # GPU-style op-graph nodes in this example

    def __add__(self, other: "ExampleOpCounts") -> "ExampleOpCounts":
        merged = ExampleOpCounts()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    @property
    def flops(self) -> int:
        """Floating-point operations (exp/div counted as one FLOP each)."""
        return self.mults + self.adds + self.exps + self.divs

    @property
    def total_ops(self) -> int:
        return self.flops + self.compares


class OpCounter:
    """Builds :class:`ExampleOpCounts` from workload structure.

    The formulas mirror Eqs. 1-6: per-sentence bag-of-words embedding
    adds, per-hop addressing/softmax/read/controller arithmetic and the
    output-layer scan.
    """

    def __init__(self, embed_dim: int):
        if embed_dim < 1:
            raise ValueError("embed_dim must be positive")
        self.embed_dim = embed_dim

    def write_sentence(self, n_words: int) -> ExampleOpCounts:
        """Embed one sentence into address+content memory (Eq. 2)."""
        e = self.embed_dim
        n_words = max(1, n_words)
        return ExampleOpCounts(
            adds=2 * n_words * e + 2 * e,  # emb_a + emb_c sums + temporal
            sram_reads=2 * n_words * e,
            sram_writes=2 * e,
            stream_words_in=n_words,
            kernel_launches=2,
        )

    def embed_question(self, n_words: int) -> ExampleOpCounts:
        e = self.embed_dim
        n_words = max(1, n_words)
        return ExampleOpCounts(
            adds=n_words * e,
            sram_reads=n_words * e,
            stream_words_in=n_words,
            kernel_launches=1,
        )

    def hop(self, n_slots: int) -> ExampleOpCounts:
        """One recursive read: Eq. 1 softmax addressing, Eq. 5 read,
        Eq. 4 controller update."""
        e = self.embed_dim
        n_slots = max(1, n_slots)
        return ExampleOpCounts(
            # scores: L dots of width E; read: L MACs of width E;
            # controller matvec: E x E.
            mults=n_slots * e + n_slots * e + e * e,
            adds=n_slots * (e - 1) + n_slots  # score trees + exp-sum
            + n_slots * e  # weighted read accumulate
            + e * (e - 1) + e,  # controller tree + add read vector
            exps=n_slots,
            divs=n_slots,
            sram_reads=2 * n_slots * e,
            kernel_launches=5,
        )

    def output_scan(self, n_visited: int) -> ExampleOpCounts:
        """Sequential MIPS over ``n_visited`` output rows (Eq. 6)."""
        e = self.embed_dim
        n_visited = max(1, n_visited)
        return ExampleOpCounts(
            mults=n_visited * e,
            adds=n_visited * (e - 1),
            compares=n_visited,
            sram_reads=n_visited * e,
            stream_words_out=1,
            kernel_launches=1,
        )

    def example(
        self,
        sentence_word_counts: list[int],
        question_words: int,
        hops: int,
        output_visited: int,
    ) -> ExampleOpCounts:
        """Total counts for one QA example."""
        total = ExampleOpCounts()
        for n_words in sentence_word_counts:
            total = total + self.write_sentence(n_words)
        total = total + self.embed_question(question_words)
        n_slots = len(sentence_word_counts)
        for _ in range(max(1, hops)):
            total = total + self.hop(n_slots)
        total = total + self.output_scan(output_visited)
        return total
