"""Zero-copy access to saved ``.npz`` archives.

``np.load(path, mmap_mode="r")`` silently ignores ``mmap_mode`` for
zip archives, so serving workers that "mmap the npz" with it would in
fact read private copies — one full weight set per process.
:func:`mmap_npz` does what that call pretends to: because
:func:`numpy.savez` stores members uncompressed (``ZIP_STORED``), each
member's ``.npy`` byte stream sits contiguously inside the archive, so
every array can be mapped read-only straight out of the zip at its
member offset. All worker processes then share the same page-cache
pages for the weights — loading them "once, zero-copy" regardless of
how many workers fork.

Each member is located via its zip local file header (the central
directory's ``header_offset`` plus the 30-byte fixed header and the
name/extra fields), then the standard ``.npy`` magic + header is parsed
with :mod:`numpy.lib.format` to find the raw data offset, dtype and
shape for :class:`numpy.memmap`. Members that cannot be mapped —
compressed, object-dtype, or empty — fall back to a normal in-memory
read, so the function degrades gracefully instead of failing.

The maps are opened ``mode="r"``: mutating a mapped array raises, which
is exactly the contract serving wants for shared weights.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path

import numpy as np
from numpy.lib import format as npy_format

_LOCAL_HEADER_SIZE = 30
_LOCAL_HEADER_MAGIC = b"PK\x03\x04"


def _member_data_offset(raw, info: zipfile.ZipInfo) -> int:
    """Absolute file offset of a ZIP_STORED member's first data byte."""
    raw.seek(info.header_offset)
    header = raw.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE or header[:4] != _LOCAL_HEADER_MAGIC:
        raise ValueError(f"bad local file header for {info.filename!r}")
    name_len, extra_len = struct.unpack("<HH", header[26:30])
    return info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def _read_npy_header(raw):
    """Parse the ``.npy`` magic + header at the current position."""
    version = npy_format.read_magic(raw)
    readers = {
        (1, 0): npy_format.read_array_header_1_0,
        (2, 0): npy_format.read_array_header_2_0,
    }
    reader = readers.get(version)
    if reader is None:
        raise ValueError(f"unsupported .npy format version {version}")
    return reader(raw)


def _map_member(path: Path, raw, info: zipfile.ZipInfo) -> np.ndarray:
    data_offset = _member_data_offset(raw, info)
    raw.seek(data_offset)
    shape, fortran_order, dtype = _read_npy_header(raw)
    if dtype.hasobject:
        raise ValueError("object arrays cannot be memory-mapped")
    if int(np.prod(shape)) == 0:
        # np.memmap refuses zero-length maps; an empty array has no
        # bytes to share anyway.
        return np.zeros(shape, dtype=dtype, order="F" if fortran_order else "C")
    return np.memmap(
        path,
        dtype=dtype,
        shape=shape,
        order="F" if fortran_order else "C",
        mode="r",
        offset=raw.tell(),
    )


def mmap_npz(path) -> dict[str, np.ndarray]:
    """Open every array in ``path`` (an ``.npz``) as a read-only map.

    Returns ``{name: array}`` with the ``.npy`` suffix stripped from
    member names, matching ``np.load`` keys. Arrays are bit-identical
    to a normal load (the artifacts round-trip test pins this); members
    that cannot be mapped are read into memory instead.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            name = info.filename
            key = name[: -len(".npy")] if name.endswith(".npy") else name
            if info.compress_type == zipfile.ZIP_STORED:
                try:
                    arrays[key] = _map_member(path, raw, info)
                    continue
                except (ValueError, OSError):
                    pass  # fall through to the copying reader
            with archive.open(info) as member:
                arrays[key] = npy_format.read_array(member)
    return arrays
