"""Array codecs (and the manifest format version) for fitted state.

A fitted :class:`~repro.mips.thresholding.ThresholdModel` is one
non-trivial artifact: per-index histogram pairs (ragged dicts of
:class:`LogitHistogram`), optional Gaussian KDEs (ragged sample
vectors), priors, silhouettes and the visit order. The other is a
:class:`~repro.mann.quantize.QuantizedWeights` snapshot, stored as the
integer codes a device memory would hold plus its Qm.n format. Both
directions of both codecs are bit-exact — edges, counts, samples,
bandwidths and codes are stored verbatim, and fixed-point
dequantisation multiplies by an exact power of two.

The artifact manifest (``suite.json``) carries ``format_version`` so a
reader can tell a directory written by a newer build from a corrupt
one. Version history:

* **1** — PR 3: weights, vocab, threshold models, encoded batches.
* **2** — PR 4: optional per-task quantized weights (``quantized.npz``
  + a ``quantization`` block in ``meta.json``). Version-1 directories
  simply lack the optional files and still load.
"""

from __future__ import annotations

import numpy as np

from repro.mann.quantize import QFormat, QuantizedWeights
from repro.mips.histograms import GaussianKde, LogitHistogram
from repro.mips.thresholding import ThresholdModel

#: Version written into every new manifest.
FORMAT_VERSION = 2
#: Versions this build can read (additive format changes only).
SUPPORTED_VERSIONS = (1, 2)


def check_format_version(version) -> int:
    """Validate a manifest's ``format_version``; returns it as an int.

    Unknown *future* versions get a clear upgrade message instead of an
    arbitrary KeyError deep inside the loader.
    """
    if not isinstance(version, int):
        raise ValueError(
            f"artifact manifest has no integer format_version (got "
            f"{version!r}); the directory is not a suite artifact"
        )
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"artifact format version {version} not supported: this build "
            f"reads versions {SUPPORTED_VERSIONS}"
            + (
                " — the artifacts were written by a newer build; "
                "upgrade this checkout or re-save the suite"
                if version > FORMAT_VERSION
                else ""
            )
        )
    return version


def _encode_hists(
    hists: dict[int, LogitHistogram], prefix: str, out: dict[str, np.ndarray]
) -> None:
    """Stack a per-index histogram dict into ``prefix_{indices,edges,counts}``."""
    indices = np.array(sorted(hists), dtype=np.int64)
    if indices.size:
        edges = np.stack([hists[int(i)].edges for i in indices])
        counts = np.stack([hists[int(i)].counts for i in indices])
    else:
        edges = np.zeros((0, 2), dtype=np.float64)
        counts = np.zeros((0, 1), dtype=np.int64)
    out[f"{prefix}_indices"] = indices
    out[f"{prefix}_edges"] = edges
    out[f"{prefix}_counts"] = counts


def _decode_hists(
    data, prefix: str
) -> dict[int, LogitHistogram]:
    hists: dict[int, LogitHistogram] = {}
    indices = data[f"{prefix}_indices"]
    edges = data[f"{prefix}_edges"]
    counts = data[f"{prefix}_counts"]
    for row, index in enumerate(indices):
        hist = LogitHistogram(
            float(edges[row, 0]), float(edges[row, -1]), counts.shape[1]
        )
        # Restore the exact fitted state: linspace re-derivation could
        # differ in the last ulp, so the stored arrays win verbatim.
        hist.edges = edges[row].copy()
        hist.counts = counts[row].astype(np.int64, copy=True)
        hists[int(index)] = hist
    return hists


def _encode_kdes(
    kdes: dict[int, GaussianKde], prefix: str, out: dict[str, np.ndarray]
) -> None:
    """Ragged KDE samples become one concatenated vector plus offsets."""
    indices = np.array(sorted(kdes), dtype=np.int64)
    samples = [kdes[int(i)].samples for i in indices]
    lengths = np.array([len(s) for s in samples], dtype=np.int64)
    out[f"{prefix}_indices"] = indices
    out[f"{prefix}_offsets"] = np.concatenate([[0], np.cumsum(lengths)])
    out[f"{prefix}_samples"] = (
        np.concatenate(samples) if samples else np.zeros(0, dtype=np.float64)
    )
    out[f"{prefix}_bandwidths"] = np.array(
        [kdes[int(i)].bandwidth for i in indices], dtype=np.float64
    )


def _decode_kdes(data, prefix: str) -> dict[int, GaussianKde]:
    kdes: dict[int, GaussianKde] = {}
    indices = data[f"{prefix}_indices"]
    offsets = data[f"{prefix}_offsets"]
    samples = data[f"{prefix}_samples"]
    bandwidths = data[f"{prefix}_bandwidths"]
    for row, index in enumerate(indices):
        chunk = samples[int(offsets[row]) : int(offsets[row + 1])].copy()
        kdes[int(index)] = GaussianKde(chunk, bandwidth=float(bandwidths[row]))
    return kdes


def encode_threshold_model(model: ThresholdModel) -> dict[str, np.ndarray]:
    """Flatten a fitted model into plain arrays for ``np.savez``."""
    arrays: dict[str, np.ndarray] = {
        "n_indices": np.array(model.n_indices, dtype=np.int64),
        "priors": model.priors,
        "silhouettes": model.silhouettes,
        "order": model.order,
        "uses_kde": np.array(model.uses_kde),
    }
    _encode_hists(model.positive_hists, "pos", arrays)
    _encode_hists(model.negative_hists, "neg", arrays)
    if model.uses_kde:
        _encode_kdes(model.positive_kdes or {}, "pos_kde", arrays)
        _encode_kdes(model.negative_kdes or {}, "neg_kde", arrays)
    return arrays


def encode_quantized_weights(quantized: QuantizedWeights) -> dict[str, np.ndarray]:
    """Flatten a fixed-point snapshot into integer-code arrays."""
    arrays: dict[str, np.ndarray] = {
        "int_bits": np.array(quantized.qformat.int_bits, dtype=np.int64),
        "frac_bits": np.array(quantized.qformat.frac_bits, dtype=np.int64),
    }
    for name, codes in quantized.codes().items():
        arrays[f"code_{name}"] = codes
    return arrays


def decode_quantized_weights(data, config) -> QuantizedWeights:
    """Inverse of :func:`encode_quantized_weights` (npz file or dict).

    ``config`` is the task's :class:`~repro.mann.config.MannConfig`;
    the rebuilt float weights land exactly on the stored grid.
    """
    qformat = QFormat(int(data["int_bits"]), int(data["frac_bits"]))
    codes = {
        key[len("code_"):]: np.asarray(data[key])
        for key in data
        if key.startswith("code_")
    }
    return QuantizedWeights.from_codes(config, qformat, codes)


def decode_threshold_model(data) -> ThresholdModel:
    """Inverse of :func:`encode_threshold_model` (npz file or dict)."""
    uses_kde = bool(data["uses_kde"])
    return ThresholdModel(
        n_indices=int(data["n_indices"]),
        positive_hists=_decode_hists(data, "pos"),
        negative_hists=_decode_hists(data, "neg"),
        priors=np.asarray(data["priors"], dtype=np.float64).copy(),
        silhouettes=np.asarray(data["silhouettes"], dtype=np.float64).copy(),
        order=np.asarray(data["order"], dtype=np.int64).copy(),
        positive_kdes=_decode_kdes(data, "pos_kde") if uses_kde else None,
        negative_kdes=_decode_kdes(data, "neg_kde") if uses_kde else None,
    )
