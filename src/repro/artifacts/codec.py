"""Array codecs for fitted state that is not a plain weight matrix.

A fitted :class:`~repro.mips.thresholding.ThresholdModel` is the one
non-trivial artifact: per-index histogram pairs (ragged dicts of
:class:`LogitHistogram`), optional Gaussian KDEs (ragged sample
vectors), priors, silhouettes and the visit order. Both directions are
bit-exact — edges, counts, samples and bandwidths are stored verbatim,
so ``thresholds(rho)`` of a decoded model reproduces the original to
the last ulp.
"""

from __future__ import annotations

import numpy as np

from repro.mips.histograms import GaussianKde, LogitHistogram
from repro.mips.thresholding import ThresholdModel


def _encode_hists(
    hists: dict[int, LogitHistogram], prefix: str, out: dict[str, np.ndarray]
) -> None:
    """Stack a per-index histogram dict into ``prefix_{indices,edges,counts}``."""
    indices = np.array(sorted(hists), dtype=np.int64)
    if indices.size:
        edges = np.stack([hists[int(i)].edges for i in indices])
        counts = np.stack([hists[int(i)].counts for i in indices])
    else:
        edges = np.zeros((0, 2), dtype=np.float64)
        counts = np.zeros((0, 1), dtype=np.int64)
    out[f"{prefix}_indices"] = indices
    out[f"{prefix}_edges"] = edges
    out[f"{prefix}_counts"] = counts


def _decode_hists(
    data, prefix: str
) -> dict[int, LogitHistogram]:
    hists: dict[int, LogitHistogram] = {}
    indices = data[f"{prefix}_indices"]
    edges = data[f"{prefix}_edges"]
    counts = data[f"{prefix}_counts"]
    for row, index in enumerate(indices):
        hist = LogitHistogram(
            float(edges[row, 0]), float(edges[row, -1]), counts.shape[1]
        )
        # Restore the exact fitted state: linspace re-derivation could
        # differ in the last ulp, so the stored arrays win verbatim.
        hist.edges = edges[row].copy()
        hist.counts = counts[row].astype(np.int64, copy=True)
        hists[int(index)] = hist
    return hists


def _encode_kdes(
    kdes: dict[int, GaussianKde], prefix: str, out: dict[str, np.ndarray]
) -> None:
    """Ragged KDE samples become one concatenated vector plus offsets."""
    indices = np.array(sorted(kdes), dtype=np.int64)
    samples = [kdes[int(i)].samples for i in indices]
    lengths = np.array([len(s) for s in samples], dtype=np.int64)
    out[f"{prefix}_indices"] = indices
    out[f"{prefix}_offsets"] = np.concatenate([[0], np.cumsum(lengths)])
    out[f"{prefix}_samples"] = (
        np.concatenate(samples) if samples else np.zeros(0, dtype=np.float64)
    )
    out[f"{prefix}_bandwidths"] = np.array(
        [kdes[int(i)].bandwidth for i in indices], dtype=np.float64
    )


def _decode_kdes(data, prefix: str) -> dict[int, GaussianKde]:
    kdes: dict[int, GaussianKde] = {}
    indices = data[f"{prefix}_indices"]
    offsets = data[f"{prefix}_offsets"]
    samples = data[f"{prefix}_samples"]
    bandwidths = data[f"{prefix}_bandwidths"]
    for row, index in enumerate(indices):
        chunk = samples[int(offsets[row]) : int(offsets[row + 1])].copy()
        kdes[int(index)] = GaussianKde(chunk, bandwidth=float(bandwidths[row]))
    return kdes


def encode_threshold_model(model: ThresholdModel) -> dict[str, np.ndarray]:
    """Flatten a fitted model into plain arrays for ``np.savez``."""
    arrays: dict[str, np.ndarray] = {
        "n_indices": np.array(model.n_indices, dtype=np.int64),
        "priors": model.priors,
        "silhouettes": model.silhouettes,
        "order": model.order,
        "uses_kde": np.array(model.uses_kde),
    }
    _encode_hists(model.positive_hists, "pos", arrays)
    _encode_hists(model.negative_hists, "neg", arrays)
    if model.uses_kde:
        _encode_kdes(model.positive_kdes or {}, "pos_kde", arrays)
        _encode_kdes(model.negative_kdes or {}, "neg_kde", arrays)
    return arrays


def decode_threshold_model(data) -> ThresholdModel:
    """Inverse of :func:`encode_threshold_model` (npz file or dict)."""
    uses_kde = bool(data["uses_kde"])
    return ThresholdModel(
        n_indices=int(data["n_indices"]),
        positive_hists=_decode_hists(data, "pos"),
        negative_hists=_decode_hists(data, "neg"),
        priors=np.asarray(data["priors"], dtype=np.float64).copy(),
        silhouettes=np.asarray(data["silhouettes"], dtype=np.float64).copy(),
        order=np.asarray(data["order"], dtype=np.int64).copy(),
        positive_kdes=_decode_kdes(data, "pos_kde") if uses_kde else None,
        negative_kdes=_decode_kdes(data, "neg_kde") if uses_kde else None,
    )
