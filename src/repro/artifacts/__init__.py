"""Persistent model artifacts: save a trained suite once, serve it forever.

The deployment-shaped entry points of the repro:

* :func:`save_suite` / :func:`load_suite` — round-trip a trained
  :class:`~repro.eval.suite.BabiSuite` (weights, vocabulary, fitted
  threshold models, encoded batches, training summary) through an
  ``.npz`` + JSON directory, bit-exactly.
* :func:`verify_artifacts` — reload a directory and prove predictions
  and logits match the arrays recorded at save time.
* :func:`mmap_npz` / ``load_suite(..., mmap=True)`` — map the bulk
  arrays read-only straight out of ``arrays.npz`` so serving worker
  processes share one set of weight pages instead of private copies.

Built artifacts feed :func:`repro.serving.open_predictor`,
:class:`repro.serving.ModelRouter` and every CLI experiment subcommand
via ``--artifacts DIR``. Manifests carry a ``format_version``
(validated by :func:`check_format_version`); version 2 adds optional
per-task fixed-point weight snapshots
(``save_suite(..., qformat=QFormat(3, 8))``) so quantized models serve
straight from the artifact directory.
"""

from repro.artifacts.codec import (
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    check_format_version,
    decode_quantized_weights,
    decode_threshold_model,
    encode_quantized_weights,
    encode_threshold_model,
)
from repro.artifacts.memmap import mmap_npz
from repro.artifacts.store import (
    load_suite,
    save_suite,
    verify_artifacts,
)

__all__ = [
    "mmap_npz",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "check_format_version",
    "decode_quantized_weights",
    "decode_threshold_model",
    "encode_quantized_weights",
    "encode_threshold_model",
    "load_suite",
    "save_suite",
    "verify_artifacts",
]
