"""Persistent model artifacts: save a trained suite once, serve it forever.

The deployment-shaped entry points of the repro:

* :func:`save_suite` / :func:`load_suite` — round-trip a trained
  :class:`~repro.eval.suite.BabiSuite` (weights, vocabulary, fitted
  threshold models, encoded batches, training summary) through an
  ``.npz`` + JSON directory, bit-exactly.
* :func:`verify_artifacts` — reload a directory and prove predictions
  and logits match the arrays recorded at save time.

Built artifacts feed :func:`repro.serving.open_predictor` and every
CLI experiment subcommand via ``--artifacts DIR``.
"""

from repro.artifacts.codec import decode_threshold_model, encode_threshold_model
from repro.artifacts.store import (
    FORMAT_VERSION,
    load_suite,
    save_suite,
    verify_artifacts,
)

__all__ = [
    "FORMAT_VERSION",
    "decode_threshold_model",
    "encode_threshold_model",
    "load_suite",
    "save_suite",
    "verify_artifacts",
]
