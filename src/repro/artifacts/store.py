"""Persistent suite artifacts: train once, serve forever.

``save_suite(suite, directory)`` writes one self-contained artifact
directory; ``load_suite(directory)`` restores a fully functional
:class:`~repro.eval.suite.BabiSuite` — frozen weights, shared vocab,
fitted :class:`~repro.mips.thresholding.ThresholdModel` per task, the
encoded train/test batches and the training summary — without running
a single training step. Layout::

    directory/
      suite.json            # format version, SuiteConfig, vocab words
      task_01/
        arrays.npz          # weights, encoded batches, train logits,
                            # reference test predictions
        threshold.npz       # fitted ThresholdModel (see codec.py)
        quantized.npz       # optional Qm.n integer codes (format v2)
        meta.json           # MannConfig + TrainResult summary
      task_02/ ...

Everything numeric round-trips bit-exactly (``np.savez`` preserves
dtype and bits; JSON floats use ``repr`` round-tripping), which
:func:`verify_artifacts` checks by recomputing predictions and logits
from the restored weights. The serving layer
(:func:`repro.serving.open_predictor`,
:class:`repro.serving.ModelRouter`) accepts these directories directly;
``save_suite(..., qformat=QFormat(3, 8))`` additionally persists a
fixed-point snapshot of every task so quantized models can be served
with ``open_predictor(..., quantized=True)``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.artifacts.codec import (
    FORMAT_VERSION,
    check_format_version,
    decode_quantized_weights,
    decode_threshold_model,
    encode_quantized_weights,
    encode_threshold_model,
)
from repro.artifacts.memmap import mmap_npz
from repro.babi.dataset import EncodedBatch
from repro.babi.vocab import Vocab
from repro.eval.suite import BabiSuite, SuiteConfig, TaskSystem
from repro.mann.config import MannConfig
from repro.mann.inference import InferenceEngine
from repro.mann.quantize import QFormat, QuantizedWeights
from repro.mann.trainer import TrainResult
from repro.mann.weights import MannWeights

_WEIGHT_FIELDS = ("w_emb_a", "w_emb_c", "w_emb_q", "w_r", "w_o", "t_a", "t_c")
_BATCH_FIELDS = ("stories", "questions", "answers", "story_lengths")


def _task_dirname(task_id: int) -> str:
    return f"task_{task_id:02d}"


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------
def save_suite(suite: BabiSuite, directory, qformat: QFormat | None = None) -> Path:
    """Write ``suite`` to ``directory`` (created if missing).

    Returns the directory as a :class:`~pathlib.Path`. Raises if the
    directory already holds a ``suite.json`` for different task ids —
    refusing to silently mix two suites in one place. With ``qformat``
    every task additionally persists a fixed-point snapshot
    (:class:`~repro.mann.quantize.QuantizedWeights`) servable via
    ``open_predictor(..., quantized=True)``; without it, any quantized
    snapshot already attached to a task (e.g. from a previous load)
    is preserved as-is.
    """
    directory = Path(directory)
    marker = directory / "suite.json"
    if marker.exists():
        existing = json.loads(marker.read_text())
        if existing.get("task_ids") != sorted(suite.tasks):
            raise FileExistsError(
                f"{directory} already holds artifacts for tasks "
                f"{existing.get('task_ids')}; refusing to overwrite with "
                f"tasks {sorted(suite.tasks)}"
            )
    directory.mkdir(parents=True, exist_ok=True)

    for task_id, system in suite.tasks.items():
        _save_task_system(system, directory / _task_dirname(task_id), qformat)

    marker.write_text(
        json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "config": asdict(suite.config),
                "task_ids": sorted(suite.tasks),
                "vocab": suite.vocab.words(),
            },
            indent=2,
        )
        + "\n"
    )
    return directory


def _save_task_system(
    system: TaskSystem, task_dir: Path, qformat: QFormat | None = None
) -> None:
    task_dir.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        name: getattr(system.weights, name) for name in _WEIGHT_FIELDS
    }
    for split, batch in (("train", system.train_batch), ("test", system.test_batch)):
        for field in _BATCH_FIELDS:
            arrays[f"{split}_{field}"] = getattr(batch, field)
    arrays["train_logits"] = system.train_logits
    # Reference predictions let verify_artifacts (and the CI round-trip
    # job) assert bit-exactness in a fresh process without retraining.
    arrays["expected_test_predictions"] = system.batch_engine.predict(
        system.test_batch.stories,
        system.test_batch.questions,
        system.test_batch.story_lengths,
    )
    np.savez(task_dir / "arrays.npz", **arrays)
    np.savez(
        task_dir / "threshold.npz", **encode_threshold_model(system.threshold_model)
    )

    quantized = system.quantized
    if qformat is not None:  # explicit request wins: re-snap the floats
        quantized, _ = QuantizedWeights.quantize(system.weights, qformat)
    if quantized is not None:
        np.savez(
            task_dir / "quantized.npz", **encode_quantized_weights(quantized)
        )

    result = system.train_result
    meta = {
        "task_id": system.task_id,
        "model_config": asdict(system.weights.config),
        "train_result": {
            "train_losses": list(result.train_losses),
            "train_accuracies": list(result.train_accuracies),
            "test_accuracy": result.test_accuracy,
            "majority_accuracy": result.majority_accuracy,
            "epochs_run": result.epochs_run,
        },
    }
    if quantized is not None:
        meta["quantization"] = {
            "int_bits": quantized.qformat.int_bits,
            "frac_bits": quantized.qformat.frac_bits,
        }
    (task_dir / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------
def load_suite(directory, *, mmap: bool = False) -> BabiSuite:
    """Restore a :class:`BabiSuite` saved by :func:`save_suite`.

    The restored systems are ready for every experiment driver and for
    :func:`repro.serving.open_predictor`; their ``train``/``test``
    dataset fields are ``None`` (raw examples are not persisted — the
    encoded batches are).

    With ``mmap=True`` the bulk arrays (weights, encoded batches,
    training logits) are memory-mapped read-only straight out of
    ``arrays.npz`` via :func:`repro.artifacts.memmap.mmap_npz` instead
    of copied into private memory — serving worker processes opened
    this way share one set of page-cache pages for the weights. The
    arrays are bit-identical to a normal load but immutable; training
    or any in-place mutation needs the default copying load.
    """
    directory = Path(directory)
    marker = directory / "suite.json"
    if not marker.is_file():
        raise FileNotFoundError(f"no suite artifacts at {directory} (suite.json missing)")
    manifest = json.loads(marker.read_text())
    check_format_version(manifest.get("format_version"))

    words = manifest["vocab"]
    vocab = Vocab(words[1:])  # index 0 is always the reserved pad token
    if vocab.words() != words:
        raise ValueError(f"corrupt vocabulary list in {marker}")

    config_dict = dict(manifest["config"])
    config_dict["task_ids"] = tuple(config_dict["task_ids"])
    suite = BabiSuite(config=SuiteConfig(**config_dict), vocab=vocab)
    for task_id in manifest["task_ids"]:
        suite.tasks[int(task_id)] = _load_task_system(
            directory / _task_dirname(int(task_id)), mmap=mmap
        )
    return suite


def _load_task_system(task_dir: Path, mmap: bool = False) -> TaskSystem:
    meta = json.loads((task_dir / "meta.json").read_text())
    model_config = MannConfig(**meta["model_config"])

    if mmap:
        data = mmap_npz(task_dir / "arrays.npz")
        weights = MannWeights(
            model_config, *(data[name] for name in _WEIGHT_FIELDS)
        )
        batches = {
            split: EncodedBatch(
                *(data[f"{split}_{field}"] for field in _BATCH_FIELDS)
            )
            for split in ("train", "test")
        }
        train_logits = data["train_logits"]
    else:
        with np.load(task_dir / "arrays.npz") as data:
            weights = MannWeights(
                model_config, *(data[name].copy() for name in _WEIGHT_FIELDS)
            )
            batches = {
                split: EncodedBatch(
                    *(data[f"{split}_{field}"].copy() for field in _BATCH_FIELDS)
                )
                for split in ("train", "test")
            }
            train_logits = data["train_logits"].copy()

    with np.load(task_dir / "threshold.npz") as data:
        threshold_model = decode_threshold_model(data)

    quantized = None
    if (task_dir / "quantized.npz").is_file():
        with np.load(task_dir / "quantized.npz") as data:
            quantized = decode_quantized_weights(data, model_config)

    summary = meta["train_result"]
    train_result = TrainResult(
        model=None,  # the autograd model is not persisted, only its weights
        train_losses=list(summary["train_losses"]),
        train_accuracies=list(summary["train_accuracies"]),
        test_accuracy=float(summary["test_accuracy"]),
        majority_accuracy=float(summary["majority_accuracy"]),
        epochs_run=int(summary["epochs_run"]),
    )
    engine = InferenceEngine(weights)
    return TaskSystem(
        task_id=int(meta["task_id"]),
        train=None,
        test=None,
        train_batch=batches["train"],
        test_batch=batches["test"],
        weights=weights,
        engine=engine,
        batch_engine=engine.batch,
        threshold_model=threshold_model,
        train_result=train_result,
        train_logits=train_logits,
        quantized=quantized,
    )


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------
def verify_artifacts(directory) -> BabiSuite:
    """Load ``directory`` and prove the round-trip is bit-exact.

    Recomputes every task's test-set predictions and training logits
    from the restored weights and asserts they equal the arrays stored
    at save time — the check the CI round-trip job runs in a fresh
    process. Returns the verified suite.
    """
    directory = Path(directory)
    suite = load_suite(directory)
    for task_id, system in suite.tasks.items():
        task_dir = directory / _task_dirname(task_id)
        with np.load(task_dir / "arrays.npz") as data:
            expected_preds = data["expected_test_predictions"].copy()
            expected_logits = data["train_logits"].copy()
        preds = system.batch_engine.predict(
            system.test_batch.stories,
            system.test_batch.questions,
            system.test_batch.story_lengths,
        )
        if not np.array_equal(preds, expected_preds):
            raise AssertionError(
                f"task {task_id}: restored predictions differ from the "
                "predictions recorded at save time"
            )
        logits = system.batch_engine.logits(
            system.train_batch.stories,
            system.train_batch.questions,
            system.train_batch.story_lengths,
        )
        if not np.array_equal(logits, expected_logits):
            raise AssertionError(
                f"task {task_id}: restored train logits are not bit-exact"
            )
        if system.quantized is not None:
            # The fixed-point snapshot must be exactly the float model
            # snapped to its stored grid — re-quantise and compare.
            qformat = system.quantized.qformat
            for name in _WEIGHT_FIELDS:
                restored = getattr(system.quantized.weights, name)
                expected = qformat.quantize(getattr(system.weights, name))
                if not np.array_equal(restored, expected):
                    raise AssertionError(
                        f"task {task_id}: quantized weight {name} does not "
                        f"match the float model snapped to {qformat}"
                    )
    return suite
