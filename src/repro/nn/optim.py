"""Optimisers and learning-rate schedules.

MemN2N was trained with plain SGD, learning rate annealed by halving
every 25 epochs, and gradient-norm clipping at 40. Those are the
defaults used by :mod:`repro.mann.trainer`; Adam is provided as a
faster-converging alternative for the small synthetic tasks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is <= max_norm.

        Returns the pre-clip norm (useful for logging).
        """
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm > 0:
            scale = max_norm / (norm + 1e-12)
            for p in self.params:
                if p.grad is not None:
                    p.grad *= scale
        return norm

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum/weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepDecay:
    """Halve (or scale) the learning rate every ``step_size`` epochs.

    Mirrors MemN2N's anneal-by-half-every-25-epochs schedule.
    """

    def __init__(self, optimizer: Optimizer, step_size: int = 25, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        power = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**power)
        return self.optimizer.lr


class ExponentialDecay:
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        self.optimizer = optimizer
        self.gamma = gamma
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr *= self.gamma
        return self.optimizer.lr
