"""Loss functions for training the MANN."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood given log-probabilities.

    ``log_probs`` has shape (batch, classes); ``targets`` is an integer
    vector of length batch. Returns the mean NLL as a scalar tensor.
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch = log_probs.shape[0]
    if targets.shape != (batch,):
        raise ValueError(
            f"targets shape {targets.shape} does not match batch size {batch}"
        )
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy from raw logits (numerically stable)."""
    return nll_loss(logits.log_softmax(axis=-1), targets)


def softmax_cross_entropy_grad(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Closed-form gradient of mean softmax CE w.r.t. logits.

    Pure-numpy helper used by tests to validate the autograd path.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    probs = exps / exps.sum(axis=-1, keepdims=True)
    grad = probs.copy()
    grad[np.arange(len(targets)), targets] -= 1.0
    return grad / len(targets)
