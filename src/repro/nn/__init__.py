"""Minimal numpy reverse-mode autograd used to train the MANN.

The paper's models (End-to-End Memory Networks) were trained with a
mainstream framework; offline we build the training substrate from
scratch: a small ``Tensor`` with reverse-mode autodiff, the layers the
MANN needs, losses, initialisers and optimisers.
"""

from repro.nn.gradcheck import gradcheck, numerical_gradient
from repro.nn.init import normal_init, uniform_init, xavier_init, zeros_init
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
)
from repro.nn.losses import cross_entropy, nll_loss, softmax_cross_entropy_grad
from repro.nn.optim import SGD, Adam, ExponentialDecay, Optimizer, StepDecay
from repro.nn.tensor import Tensor, no_grad, tensor

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Sequential",
    "Dropout",
    "LayerNorm",
    "cross_entropy",
    "nll_loss",
    "softmax_cross_entropy_grad",
    "Optimizer",
    "SGD",
    "Adam",
    "StepDecay",
    "ExponentialDecay",
    "normal_init",
    "uniform_init",
    "xavier_init",
    "zeros_init",
    "gradcheck",
    "numerical_gradient",
]
