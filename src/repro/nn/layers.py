"""Layer abstractions on top of :mod:`repro.nn.tensor`.

Only what the MANN needs, plus a couple of generic layers so the package
stands alone as a small NN library.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.nn.init import normal_init, xavier_init, zeros_init
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by construction)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with recursive parameter discovery.

    Subclasses assign :class:`Parameter` or :class:`Module` instances as
    attributes; ``parameters()`` walks the attribute tree.
    """

    training: bool = True

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            self._collect(value, params, seen)
        return params

    def _collect(self, value, params: list[Parameter], seen: set[int]) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                params.append(value)
        elif isinstance(value, Module):
            for p in value.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect(item, params, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect(item, params, seen)

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        for key, value in self.__dict__.items():
            if isinstance(value, Parameter):
                yield key, value
            elif isinstance(value, Module):
                for sub_key, sub_value in value.named_parameters():
                    yield f"{key}.{sub_key}", sub_value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{key}[{i}]", item
                    elif isinstance(item, Module):
                        for sub_key, sub_value in item.named_parameters():
                            yield f"{key}[{i}].{sub_key}", sub_value

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def _submodules(self):
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield item

    def train(self) -> "Module":
        self.training = True
        for module in self._submodules():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._submodules():
            module.eval()
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data[...] = state[name]

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        init: str = "xavier",
    ):
        self.in_features = in_features
        self.out_features = out_features
        if init == "xavier":
            weight = xavier_init((in_features, out_features), rng)
        elif init == "normal":
            weight = normal_init((in_features, out_features), rng)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(zeros_init((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer indices to dense rows.

    For the MANN the bag-of-words embedding of a sentence is the sum of
    the embedding rows of its word indices (Eq. 2 of the paper); the
    helper :meth:`bag_of_words` performs exactly that with a
    pad-index mask.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        pad_index: int | None = 0,
        std: float = 0.1,
    ):
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.pad_index = pad_index
        weight = normal_init((num_embeddings, embedding_dim), rng, std=std)
        if pad_index is not None:
            weight[pad_index] = 0.0
        self.weight = Parameter(weight, name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.weight.take_rows(np.asarray(indices, dtype=np.int64))

    def bag_of_words(self, indices: np.ndarray) -> Tensor:
        """Sum embedding rows over the last axis of ``indices``.

        ``indices`` has shape (..., n_words); padding positions (equal to
        ``pad_index``) contribute zero because the pad row is zero and is
        kept zeroed by convention (the trainer re-zeroes it after every
        update, mirroring the null-word handling of MemN2N).
        """
        idx = np.asarray(indices, dtype=np.int64)
        rows = self.weight.take_rows(idx)
        return rows.sum(axis=-2)


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    MemN2N's bAbI recipe does not use dropout, but the layer rounds out
    the library for the larger-model experiments.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        if dim < 1:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.eps = float(eps)
        self.gain = Parameter(np.ones(dim), name="gain")
        self.bias = Parameter(np.zeros(dim), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred * ((variance + self.eps) ** -0.5)
        return normalised * self.gain + self.bias


class Sequential(Module):
    """Apply contained modules in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, i: int) -> Module:
        return self.modules[i]
