"""A small reverse-mode automatic-differentiation engine on numpy.

Only the operations needed by the End-to-End Memory Network (and a few
more for completeness) are implemented: elementwise arithmetic with
broadcasting, matmul, reductions, softmax/log-softmax, tanh/relu/sigmoid,
row gathering (for embeddings) and shape ops.

Design notes
------------
* ``Tensor`` wraps a ``numpy.ndarray`` (always ``float64`` unless stated)
  and records its parents plus a backward closure.
* ``backward()`` runs a topological sort and accumulates gradients into
  ``.grad`` on every tensor with ``requires_grad=True``.
* Broadcasting is undone in the backward pass by ``_unbroadcast``.
* A module-level ``no_grad`` context manager disables graph recording,
  used by the golden inference engine.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Sequence

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph construction."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return _GRAD_ENABLED


def _as_array(data) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != np.float64:
            return data.astype(np.float64)
        return data
    return np.asarray(data, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum across dimensions that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and grad_enabled()
        self._parents = tuple(_parents) if grad_enabled() else ()
        self._backward = _backward if grad_enabled() else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------
    def _needs_graph(self, *others: "Tensor") -> bool:
        if not grad_enabled():
            return False
        if self.requires_grad:
            return True
        return any(o.requires_grad for o in others)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar roots
        require an explicit output gradient.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without a gradient is only valid for scalars; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            if parent_grads is None:
                continue
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] += pgrad
                else:
                    grads[id(parent)] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data + other.data
        if not self._needs_graph(other):
            return Tensor(out_data)

        def backward(grad):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(grad, other.data.shape),
            )

        return Tensor(out_data, True, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if not self._needs_graph():
            return Tensor(-self.data)

        def backward(grad):
            return (-grad,)

        return Tensor(-self.data, True, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data - other.data
        if not self._needs_graph(other):
            return Tensor(out_data)

        def backward(grad):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(-grad, other.data.shape),
            )

        return Tensor(out_data, True, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return _ensure_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data * other.data
        if not self._needs_graph(other):
            return Tensor(out_data)

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.data.shape),
                _unbroadcast(grad * self.data, other.data.shape),
            )

        return Tensor(out_data, True, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data / other.data
        if not self._needs_graph(other):
            return Tensor(out_data)

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.data.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape),
            )

        return Tensor(out_data, True, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _ensure_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor(out_data, True, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out_data = self.data @ other.data
        if not self._needs_graph(other):
            return Tensor(out_data)

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return (grad * b, grad * a)
            if a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                return (grad @ b.T, np.outer(a, grad))
            if b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                return (np.outer(grad, b), a.T @ grad)
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            return (
                _unbroadcast(ga, a.shape),
                _unbroadcast(gb, b.shape),
            )

        return Tensor(out_data, True, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor(out_data, True, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            return (grad / self.data,)

        return Tensor(out_data, True, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            return (grad * (1.0 - out_data**2),)

        return Tensor(out_data, True, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor(out_data, True, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            return (grad * mask,)

        return Tensor(out_data, True, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            return (grad * sign,)

        return Tensor(out_data, True, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, self.data.shape).copy(),)

        return Tensor(out_data, True, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            # Split the gradient among ties (matches numerical gradient).
            counts = mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (mask * g / counts,)

        return Tensor(out_data, True, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            return (grad.reshape(self.data.shape),)

        return Tensor(out_data, True, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if not self._needs_graph():
            return Tensor(out_data)

        if axes is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes))

        def backward(grad):
            return (np.transpose(grad, inverse),)

        return Tensor(out_data, True, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor(out_data, True, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (used by embedding lookup); grad is scatter-add."""
        idx = np.asarray(indices)
        out_data = self.data[idx]
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            return (full,)

        return Tensor(out_data, True, (self,), backward)

    # ------------------------------------------------------------------
    # Softmax family (numerically stable, fused backward)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        out_data = exps / exps.sum(axis=axis, keepdims=True)
        if not self._needs_graph():
            return Tensor(out_data)

        def backward(grad):
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            return (out_data * (grad - dot),)

        return Tensor(out_data, True, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_norm
        if not self._needs_graph():
            return Tensor(out_data)

        softmax = np.exp(out_data)

        def backward(grad):
            return (grad - softmax * grad.sum(axis=axis, keepdims=True),)

        return Tensor(out_data, True, (self,), backward)


def _ensure_tensor(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def tensor(data, requires_grad: bool = False, name: str | None = None) -> Tensor:
    """Convenience constructor mirroring ``numpy.asarray`` semantics."""
    return Tensor(data, requires_grad=requires_grad, name=name)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with autograd support."""
    tensors = [_ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not (grad_enabled() and any(t.requires_grad for t in tensors)):
        return Tensor(out_data)

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        slices = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            slices.append(grad[tuple(index)])
        return tuple(slices)

    return Tensor(out_data, True, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with autograd support."""
    tensors = [_ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not (grad_enabled() and any(t.requires_grad for t in tensors)):
        return Tensor(out_data)

    def backward(grad):
        parts = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return Tensor(out_data, True, tuple(tensors), backward)
