"""Numerical gradient checking used by the test suite."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare autograd and numerical gradients of ``fn`` at ``x``.

    ``fn`` maps a Tensor to a scalar Tensor. Raises AssertionError with a
    diagnostic message when the check fails; returns True otherwise.
    """
    x = np.asarray(x, dtype=np.float64)

    t = Tensor(x.copy(), requires_grad=True)
    out = fn(t)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    analytic = t.grad.copy() if t.grad is not None else np.zeros_like(x)

    def scalar_fn(arr: np.ndarray) -> float:
        return float(fn(Tensor(arr.copy())).data)

    numeric = numerical_gradient(scalar_fn, x, eps=eps)

    if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
        worst = np.abs(analytic - numeric).max()
        raise AssertionError(
            f"gradcheck failed: max abs difference {worst:.3e}\n"
            f"analytic:\n{analytic}\nnumeric:\n{numeric}"
        )
    return True
