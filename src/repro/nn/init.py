"""Weight initialisers.

MemN2N uses N(0, 0.1) Gaussian initialisation for all embedding and
projection matrices; Xavier is provided for the generic layers.
"""

from __future__ import annotations

import numpy as np


def _rng_or_default(rng: np.random.Generator | None) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


def normal_init(
    shape: tuple[int, ...],
    rng: np.random.Generator | None = None,
    std: float = 0.1,
    mean: float = 0.0,
) -> np.ndarray:
    """Gaussian init; the MemN2N paper default is N(0, 0.1)."""
    return _rng_or_default(rng).normal(mean, std, size=shape)


def uniform_init(
    shape: tuple[int, ...],
    rng: np.random.Generator | None = None,
    low: float = -0.1,
    high: float = 0.1,
) -> np.ndarray:
    return _rng_or_default(rng).uniform(low, high, size=shape)


def xavier_init(
    shape: tuple[int, ...],
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Glorot uniform initialisation for 2-D weight matrices."""
    if len(shape) < 2:
        raise ValueError("xavier init needs at least 2 dimensions")
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _rng_or_default(rng).uniform(-limit, limit, size=shape)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
